//! `serve` — the standalone network evaluation server.
//!
//! Binds `GCNRL_SERVE_ADDR` (default `127.0.0.1:7733`) and serves the
//! multi-benchmark evaluation registry until killed: every connection maps
//! onto one session of the `EvalService` for its `(benchmark, node)` pair,
//! so remote trainers, baselines and the bench binaries (run with
//! `GCNRL_SERVE_ADDR` pointing here) share one engine + cache per pair.
//!
//! Knobs (all strict-parsed; a typo panics rather than silently defaulting):
//!
//! * `GCNRL_SERVE_ADDR` — bind address (`host:port`; port 0 = ephemeral).
//! * `GCNRL_SERVE_CACHE_CAP` — total cached reports across all services
//!   (default 65536), split evenly over the slots.
//! * `GCNRL_SERVE_SLOTS` — expected number of `(benchmark, node)` services
//!   sharing the budget (default 4).
//! * `GCNRL_SERVE_DEADLINE_MS` — dispatcher round deadline per service:
//!   wait up to this window to pack fuller rounds.
//! * `GCNRL_SERVE_PIPELINE` — client-side pipeline window used by the smoke
//!   clients (and by bench binaries riding `GCNRL_SERVE_ADDR`); `1`
//!   reproduces the strictly blocking v2 behaviour.
//! * `GCNRL_SERVE_BACKLOG` — admission control: reject new handshakes with
//!   `Error{busy}` while more than this many evaluation requests are
//!   pending across the registry (unset = admit unconditionally).
//! * `GCNRL_SERVE_QUEUE_WAIT_MS` — latency-keyed admission control: reject
//!   new handshakes while the observed `service.queue_wait.ns` p90 (sliding
//!   window, merged across services) exceeds this many milliseconds. The
//!   backlog count above stays as the hard fallback.
//! * `GCNRL_SERVE_REBALANCE_MS` — when set, rebalance the per-service cache
//!   budget (`GCNRL_SERVE_CACHE_CAP`) live at this period, proportional to
//!   each service's observed hit+miss traffic, instead of keeping the
//!   static even split.
//! * `GCNRL_SERVE_PEERS` — comma-separated addresses of *all* shards in a
//!   sharded tier (including this one, as the clients dial it). Enables
//!   protocol-v4 peering: a mis-routed or re-hashed key whose rendezvous
//!   owner is another live shard is pulled over `CacheQuery`/`CacheFill`
//!   instead of re-simulated.
//! * `GCNRL_SERVE_ADDRS` — client side of the sharded tier: bench binaries
//!   and trainers seeing this route each candidate to a shard by rendezvous
//!   hash via `ShardedBackend` instead of dialing `GCNRL_SERVE_ADDR`.
//! * `GCNRL_SERVE_WORKERS` — reactor worker threads harvesting resolved
//!   batches (default 4; the engine has its own compute pool).
//! * `GCNRL_THREADS` / `GCNRL_CACHE_PATH` — engine template, as everywhere.
//! * `GCNRL_METRICS_ADDR` — when set (`host:port`), also bind a plain-HTTP
//!   introspection endpoint: `/metrics` (Prometheus scrape of the process's
//!   telemetry registry), `/healthz` (liveness), `/readyz` (drain- and
//!   admission-aware readiness, wired to this server's admission limits)
//!   and `/traces` (the flight recorder's recent request trees as JSON).
//! * `GCNRL_TRACE` / `GCNRL_SLOW_MS` / `GCNRL_FLIGHT_RECORDER` — telemetry
//!   knobs honoured as everywhere: JSONL span sink with distributed trace
//!   ids, slow-request tree dumps, flight-recorder ring capacity.
//! * `GCNRL_SERVE_SMOKE` — run the CI smoke instead of serving: bind, run
//!   this many concurrent pipelined remote random-search clients over real
//!   loopback TCP, assert their runs are bit-identical to solo local runs,
//!   assert cross-client cache hits, a clean drain, a live `Metrics` RPC
//!   snapshot, a kill-and-restart reconnect scenario and (with
//!   `GCNRL_METRICS_ADDR` set) a Prometheus scrape, then exit.
//! * `GCNRL_SERVE_SHARDED_SMOKE` — run the sharded-tier CI smoke instead of
//!   serving: bind two peered shards on ephemeral ports, run this many
//!   concurrent `ShardedBackend` clients, assert cross-shard `CacheFill`
//!   pulls, kill one shard mid-run and assert every client fails over with
//!   results bit-identical to a solo local run, then exit.
//! * `GCNRL_SERVE_MULTIPROC_SMOKE` — run the cross-process tracing smoke:
//!   re-exec this binary twice as real peered shard processes (each tracing
//!   to `trace_shard{i}.jsonl`), drive one `ShardedBackend` batch through a
//!   cold shard so it peer-pulls the warm one, assert results bit-identical
//!   to a solo local run, then assert the client's root trace id shows up
//!   in all three JSONL files — one request tree provably spanning three
//!   processes — and exit.

use gcnrl_bench::{
    budget_from_env, env_for_backend, env_for_session, serve_pipeline, service_session,
    ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{env_usize, BatchEvaluator, EngineConfig, ServiceConfig};
use gcnrl_serve::{
    EvalServer, MetricsHttpServer, ReconnectConfig, RegistryConfig, RemoteBackend, RemoteConfig,
    ServerConfig, ShardedBackend, ShardedConfig,
};
use std::io::{Read, Write};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn server_config() -> ServerConfig {
    let mut service = ServiceConfig::default();
    if let Some(ms) = env_usize("GCNRL_SERVE_DEADLINE_MS") {
        service = service.with_round_deadline(std::time::Duration::from_millis(ms as u64));
    }
    let registry = RegistryConfig {
        engine: EngineConfig::from_env(),
        service,
        ..RegistryConfig::default()
    }
    .with_cache_budget(env_usize("GCNRL_SERVE_CACHE_CAP").unwrap_or(65_536))
    .with_cache_slots(env_usize("GCNRL_SERVE_SLOTS").unwrap_or(Benchmark::ALL.len()));
    let defaults = ServerConfig::default();
    ServerConfig {
        registry,
        workers: env_usize("GCNRL_SERVE_WORKERS").unwrap_or(defaults.workers),
        backlog_limit: env_usize("GCNRL_SERVE_BACKLOG")
            .map(|limit| limit as u64)
            .or(defaults.backlog_limit),
        queue_wait_limit: env_usize("GCNRL_SERVE_QUEUE_WAIT_MS")
            .map(|ms| Duration::from_millis(ms as u64))
            .or(defaults.queue_wait_limit),
        rebalance_interval: env_usize("GCNRL_SERVE_REBALANCE_MS")
            .map(|ms| Duration::from_millis(ms as u64))
            .or(defaults.rebalance_interval),
        ..defaults
    }
}

fn smoke_client_config(session: String) -> RemoteConfig {
    RemoteConfig {
        session: Some(session),
        pipeline: serve_pipeline().unwrap_or(RemoteConfig::default().pipeline),
        ..RemoteConfig::default()
    }
}

/// Kill-and-restart scenario on a scratch server: a pipelined client must
/// ride the reconnect-with-backoff path across a full server restart on the
/// same address with bit-identical results.
fn restart_smoke(benchmark: Benchmark, node: &TechnologyNode) {
    let space = benchmark.circuit().design_space(node);
    let batch: Vec<_> = (0..3)
        .map(|i| {
            let unit: Vec<f64> = (0..space.num_parameters())
                .map(|k| ((i * 41 + k * 11) % 83) as f64 / 82.0)
                .collect();
            space.from_unit(&unit)
        })
        .collect();

    let server = EvalServer::bind("127.0.0.1:0", server_config()).expect("bind scratch server");
    let addr = server.local_addr();
    let remote = RemoteBackend::connect_with(
        addr,
        benchmark,
        node,
        RemoteConfig {
            reconnect: ReconnectConfig {
                max_retries: 10,
                base_delay: std::time::Duration::from_millis(20),
                max_delay: std::time::Duration::from_millis(500),
            },
            ..smoke_client_config("restart-smoke".to_owned())
        },
    )
    .expect("restart client connect");
    let before = remote
        .try_evaluate_batch(&batch)
        .expect("pre-restart batch");

    server.shutdown();
    let server = EvalServer::bind(addr, server_config()).expect("rebind after restart");
    let after = remote
        .try_evaluate_batch(&batch)
        .expect("post-restart batch");
    assert_eq!(
        before, after,
        "the restart must be invisible in the results"
    );
    assert!(
        remote.reconnects() >= 1,
        "the backend should have re-handshaked across the restart"
    );
    remote.goodbye().expect("restart client goodbye");
    server.shutdown();
    assert_eq!(server.stats().connections_total, 1);
    println!("restart smoke OK: reconnect-with-backoff across a server restart");
}

fn sharded_client_config(seed: usize) -> ShardedConfig {
    ShardedConfig {
        remote: RemoteConfig {
            reconnect: ReconnectConfig {
                max_retries: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(50),
            },
            ..smoke_client_config(format!("sharded-smoke-{seed}"))
        },
        ..ShardedConfig::default()
    }
}

/// The sharded-tier CI smoke: two peered shards on ephemeral ports,
/// concurrent `ShardedBackend` clients routing by rendezvous hash, a
/// cross-shard `CacheFill` pull witnessed on shard 0, then one shard is
/// killed mid-run and every client must fail over to the survivor with
/// results bit-identical to a solo local run.
fn sharded_smoke(clients: usize) {
    let benchmark = Benchmark::TwoStageTia;
    let node = TechnologyNode::tsmc180();
    let space = benchmark.circuit().design_space(&node);
    let batches: Vec<Vec<ParamVector>> = (0..clients)
        .map(|client| {
            (0..8)
                .map(|i| {
                    let unit: Vec<f64> = (0..space.num_parameters())
                        .map(|k| ((client * 29 + i * 13 + k * 7) % 97) as f64 / 96.0)
                        .collect();
                    space.from_unit(&unit)
                })
                .collect()
        })
        .collect();

    // Solo local reference: the sharded tier must be invisible in the
    // results, shard kill included.
    let engine = BatchEvaluator::for_benchmark(benchmark, &node, EngineConfig::serial());
    let reference: Vec<Vec<_>> = batches.iter().map(|b| engine.evaluate_batch(b)).collect();

    let mut config = server_config();
    config.rebalance_interval = config
        .rebalance_interval
        .or(Some(Duration::from_millis(50)));
    let mut servers: Vec<EvalServer> = (0..2)
        .map(|_| EvalServer::bind("127.0.0.1:0", config.clone()).expect("bind shard"))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    for server in &servers {
        server.enable_peering(addrs.clone(), server.local_addr().to_string());
    }
    println!("sharded smoke: {clients} clients over shards {addrs:?}");

    // Barriers fence the kill: every client finishes its first pass, the
    // main thread shoots shard 1, then the clients re-evaluate through the
    // failover path with their connections still open.
    let warmed = Arc::new(Barrier::new(clients + 1));
    let resume = Arc::new(Barrier::new(clients + 1));
    let workers: Vec<_> = batches
        .iter()
        .cloned()
        .enumerate()
        .map(|(seed, batch)| {
            let addrs = addrs.clone();
            let node = node.clone();
            let warmed = Arc::clone(&warmed);
            let resume = Arc::clone(&resume);
            std::thread::spawn(move || {
                let sharded =
                    ShardedBackend::connect(&addrs, benchmark, &node, sharded_client_config(seed))
                        .expect("sharded client connect");
                let before = sharded
                    .try_evaluate_batch(&batch)
                    .expect("pre-kill sharded batch");
                warmed.wait();
                resume.wait();
                let after = sharded
                    .try_evaluate_batch(&batch)
                    .expect("post-kill sharded batch");
                let live = sharded.live_shards();
                let _ = sharded.goodbye();
                (before, after, live)
            })
        })
        .collect();

    warmed.wait();

    // Cross-shard pull witness: every key is now cached on its rendezvous
    // owner, so a plain client asking shard 0 for the full union forces it
    // to fill shard-1-owned keys over CacheQuery/CacheFill, not re-simulate.
    let union: Vec<ParamVector> = batches.iter().flatten().cloned().collect();
    let probe = RemoteBackend::connect_with(
        addrs[0].as_str(),
        benchmark,
        &node,
        smoke_client_config("sharded-peer-probe".to_owned()),
    )
    .expect("peer probe connect");
    let pulled = probe.try_evaluate_batch(&union).expect("peer pull batch");
    assert_eq!(
        pulled,
        reference.concat(),
        "peer-pulled reports diverged from the local reference"
    );
    let peer_fills = servers[0].stats().peer_fills;
    assert!(
        peer_fills > 0,
        "no cross-shard CacheFill pulls observed on shard 0"
    );
    probe.goodbye().expect("peer probe goodbye");

    let victim = servers.remove(1);
    victim.shutdown();
    drop(victim);
    resume.wait();

    for (seed, worker) in workers.into_iter().enumerate() {
        let (before, after, live) = worker.join().expect("sharded client thread");
        assert_eq!(
            before, reference[seed],
            "client {seed}: pre-kill sharded run diverged from the local reference"
        );
        assert_eq!(
            after, reference[seed],
            "client {seed}: post-kill failover run diverged from the local reference"
        );
        assert_eq!(
            live,
            vec![addrs[0].clone()],
            "client {seed}: dead shard still counted as live after failover"
        );
    }

    let survivor = &servers[0];
    survivor.shutdown();
    print_stats(survivor);
    let stats = survivor.stats();
    assert_eq!(stats.connections_active, 0, "connections not drained");
    println!(
        "sharded smoke OK: {clients} clients bit-identical across a shard kill, \
         {peer_fills} cross-shard CacheFill pulls"
    );
}

/// Cross-process distributed-tracing smoke: the sharded smokes above run
/// every shard in-process, so they cannot prove that a trace context
/// survives the wire between real processes. This one re-execs the `serve`
/// binary twice as peered shard processes, each with its own `GCNRL_TRACE`
/// sink, warms shard 1, then sends one `ShardedBackend` batch through shard
/// 0 only — forcing a cross-process `CacheQuery`/`CacheFill` pull — and
/// asserts the client's deterministic root trace id appears in all three
/// JSONL files, with shard 1's file carrying the `serve.cache_query.ns`
/// segment of the pull.
fn multiproc_smoke() {
    let benchmark = Benchmark::TwoStageTia;
    let node = TechnologyNode::tsmc180();

    // The client's own sink: honour GCNRL_TRACE when CI set it, else default
    // next to the shard files.
    let client_trace = match std::env::var("GCNRL_TRACE") {
        Ok(path) if !path.is_empty() => path,
        _ => {
            gcnrl_telemetry::set_trace_file("trace_client.jsonl").expect("open client trace sink");
            "trace_client.jsonl".to_owned()
        }
    };

    // Reserve two loopback ports so the whole peer ring is known before any
    // shard starts (ephemeral discovery would need stdout parsing; the
    // bind-and-drop window is negligible for a smoke).
    let ring: Vec<String> = (0..2)
        .map(|_| {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve shard port");
            probe.local_addr().expect("reserved addr").to_string()
        })
        .collect();
    let exe = std::env::current_exe().expect("current executable");
    let shard_traces: Vec<String> = (0..2).map(|i| format!("trace_shard{i}.jsonl")).collect();
    let mut children: Vec<std::process::Child> = (0..2)
        .map(|i| {
            std::process::Command::new(&exe)
                .env_remove("GCNRL_SERVE_MULTIPROC_SMOKE")
                .env_remove("GCNRL_SERVE_SMOKE")
                .env_remove("GCNRL_SERVE_SHARDED_SMOKE")
                .env_remove("GCNRL_METRICS_ADDR")
                .env_remove("GCNRL_SERVE_ADDRS")
                .env("GCNRL_SERVE_ADDR", &ring[i])
                .env("GCNRL_SERVE_PEERS", ring.join(","))
                .env("GCNRL_TRACE", &shard_traces[i])
                .spawn()
                .unwrap_or_else(|error| panic!("spawn shard {i}: {error}"))
        })
        .collect();
    let kill_children = |children: &mut Vec<std::process::Child>| {
        for child in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    };

    // Wait until both shards answer their listener.
    for addr in &ring {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            match std::net::TcpStream::connect(addr.as_str()) {
                Ok(_) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(error) => {
                    kill_children(&mut children);
                    panic!("shard {addr} never came up: {error}");
                }
            }
        }
    }
    println!("multiproc smoke: shards up on {ring:?}");

    let space = benchmark.circuit().design_space(&node);
    let batch: Vec<ParamVector> = (0..16)
        .map(|i| {
            let unit: Vec<f64> = (0..space.num_parameters())
                .map(|k| ((i * 19 + k * 5) % 91) as f64 / 90.0)
                .collect();
            space.from_unit(&unit)
        })
        .collect();
    let engine = BatchEvaluator::for_benchmark(benchmark, &node, EngineConfig::serial());
    let reference = engine.evaluate_batch(&batch);

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Warm shard 1 with the whole batch, then route the sharded client
        // through shard 0 only: every shard-1-owned key must come back over
        // the cross-process peer wire.
        let warm = RemoteBackend::connect_with(
            ring[1].as_str(),
            benchmark,
            &node,
            smoke_client_config("multiproc-warm".to_owned()),
        )
        .expect("connect warm shard");
        let warmed = warm.try_evaluate_batch(&batch).expect("warm batch");
        assert_eq!(warmed, reference, "warm shard diverged from local run");
        warm.goodbye().expect("warm goodbye");

        let sharded = ShardedBackend::connect(
            &ring[..1],
            benchmark,
            &node,
            ShardedConfig {
                remote: smoke_client_config("multiproc".to_owned()),
                ..ShardedConfig::default()
            },
        )
        .expect("connect sharded client");
        let reports = sharded.try_evaluate_batch(&batch).expect("traced batch");
        assert_eq!(reports, reference, "traced multiproc run changed a bit");
        sharded.goodbye().expect("sharded goodbye");
    }));
    gcnrl_telemetry::disable_trace();
    kill_children(&mut children);
    if let Err(panic) = outcome {
        std::panic::resume_unwind(panic);
    }

    // One tree across three processes: the sharded session is "multiproc"
    // and this was its first batch, so the root trace id is deterministic.
    // Substring probes are enough for a smoke — `traceview` in CI does the
    // full structural reassembly.
    let trace_id = gcnrl_telemetry::trace_id_for("multiproc", 0);
    let id_probe = format!("\"trace_id\":{trace_id}");
    for (path, want_query) in [
        (client_trace.as_str(), false),
        (shard_traces[0].as_str(), false),
        (shard_traces[1].as_str(), true),
    ] {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|error| panic!("read trace file {path}: {error}"));
        assert!(
            text.lines().any(|line| line.contains(&id_probe)),
            "{path}: the client's trace id never reached this process"
        );
        if want_query {
            assert!(
                text.lines().any(|line| {
                    line.contains(&id_probe) && line.contains("\"name\":\"serve.cache_query.ns\"")
                }),
                "{path}: no cross-process peer cache query joined the client's trace"
            );
        }
    }
    println!(
        "multiproc smoke OK: trace {trace_id:#018x} spans the client and both shard processes, \
         peer pull included"
    );
}

fn print_stats(server: &EvalServer) {
    let stats = server.stats();
    println!(
        "connections: {} total, {} active, {} rejected",
        stats.connections_total, stats.connections_active, stats.connections_rejected
    );
    for service in &stats.services {
        println!(
            "  {:<10} @ {:<6} {}",
            service.benchmark,
            service.node,
            service.engine.summary()
        );
        for session in &service.sessions {
            println!(
                "    session {:<28} weight={} submitted={} resolved={} candidates={} shared_rounds={}",
                session.name,
                session.weight,
                session.submitted,
                session.resolved,
                session.candidates,
                session.shared_rounds
            );
        }
        let closed = &service.closed;
        if closed.sessions > 0 {
            println!(
                "    closed  {:>3} sessions: submitted={} resolved={} candidates={} shared_rounds={}",
                closed.sessions,
                closed.submitted,
                closed.resolved,
                closed.candidates,
                closed.shared_rounds
            );
        }
    }
}

/// One raw-HTTP `GET` against the metrics endpoint (what a Prometheus
/// scraper does), returning the response text.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    response
}

/// The CI smoke: N concurrent remote random-search sessions over loopback
/// TCP against one shared server, checked bit-identical against solo local
/// runs, with cross-client cache reuse, a clean drain, a live telemetry
/// snapshot over the wire and (when `GCNRL_METRICS_ADDR` is bound) a
/// Prometheus scrape asserted.
fn smoke(server: &EvalServer, metrics: Option<&MetricsHttpServer>, clients: usize) {
    let cfg = budget_from_env(ExperimentConfig {
        budget: 8,
        warmup: 3,
        seeds: 1,
        calibration: 6,
        rollout_k: 1,
    });
    let benchmark = Benchmark::TwoStageTia;
    let node = TechnologyNode::tsmc180();

    // Reference: each seed alone on a fresh local service session.
    let solo: Vec<_> = (0..clients)
        .map(|seed| {
            let session = service_session(benchmark, &node, EngineConfig::serial());
            gcnrl_baselines::random_search(
                &env_for_session(&session, &cfg),
                cfg.budget,
                seed as u64,
            )
        })
        .collect();

    let addr = server.local_addr();
    let workers: Vec<_> = (0..clients)
        .map(|seed| {
            let node = node.clone();
            std::thread::spawn(move || {
                let remote = RemoteBackend::connect_with(
                    addr,
                    benchmark,
                    &node,
                    smoke_client_config(format!("smoke-{seed}")),
                )
                .expect("smoke client connect");
                gcnrl_baselines::random_search(
                    &env_for_backend(Box::new(remote), &cfg),
                    cfg.budget,
                    seed as u64,
                )
            })
        })
        .collect();
    let remote: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("smoke client thread"))
        .collect();

    for (seed, (remote_run, solo_run)) in remote.iter().zip(&solo).enumerate() {
        assert_eq!(
            remote_run, solo_run,
            "seed {seed}: remote run diverged from the local reference"
        );
    }

    // A live client can pull the server's full telemetry registry over the
    // wire: the traffic above must have left nonzero latency counts in every
    // layer a batch traverses.
    let probe = RemoteBackend::connect_with(
        addr,
        benchmark,
        &node,
        smoke_client_config("metrics-probe".to_owned()),
    )
    .expect("metrics probe connect");
    let snapshot = probe.metrics().expect("Metrics RPC");
    for name in [
        "serve.handshake.ns",
        "serve.frame_read.ns",
        "serve.frame_write.ns",
        "service.round_assemble.ns",
        "service.queue_wait.ns",
        "exec.batch.ns",
        "sim.solve.ns",
    ] {
        let hist = snapshot
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} missing from the Metrics RPC snapshot"));
        assert!(hist.count > 0, "{name} recorded nothing during the smoke");
    }
    probe.goodbye().expect("metrics probe goodbye");

    // With GCNRL_METRICS_ADDR bound, the same registry answers a raw HTTP
    // scrape in Prometheus text format.
    if let Some(endpoint) = metrics {
        let response = scrape_metrics(endpoint.local_addr());
        assert!(
            response.starts_with("HTTP/1.1 200 OK\r\n"),
            "scrape did not return 200: {response}"
        );
        for needle in ["exec_batch_ns_count", "sim_solve_ns_bucket", "le=\"+Inf\""] {
            assert!(response.contains(needle), "scrape missing {needle}");
        }
        println!("metrics scrape OK on {}", endpoint.local_addr());
    }

    server.shutdown();
    print_stats(server);
    let stats = server.stats();
    assert_eq!(stats.connections_active, 0, "connections not drained");
    assert_eq!(stats.connections_total as usize, clients + 1); // + metrics probe
    assert_eq!(stats.services.len(), 1);
    let engine = &stats.services[0].engine;
    assert!(
        engine.cache_hits >= ((clients - 1) * cfg.calibration) as u64,
        "cross-client calibration reuse missing: {engine:?}"
    );
    // Every connection closed, so its session folded into the service-level
    // aggregate; nothing may linger in the live map and nothing may be left
    // pending after the drain.
    let service = &stats.services[0];
    assert!(
        service.sessions.is_empty(),
        "closed sessions must fold out of the live map: {:?}",
        service.sessions
    );
    let closed = &service.closed;
    assert_eq!(closed.sessions as usize, clients + 1);
    assert_eq!(
        closed.submitted, closed.resolved,
        "requests left pending after drain"
    );
    assert!(
        closed.candidates >= (clients * (cfg.calibration + cfg.budget)) as u64,
        "closed aggregate lost candidates: {closed:?}"
    );
    println!(
        "serve smoke OK: {clients} remote clients bit-identical to solo runs, \
         {} cross-client cache hits, clean drain, telemetry live",
        engine.cache_hits
    );

    restart_smoke(benchmark, &node);
}

fn main() {
    if let Some(clients) = env_usize("GCNRL_SERVE_SHARDED_SMOKE") {
        sharded_smoke(clients.max(2));
        return;
    }
    if env_usize("GCNRL_SERVE_MULTIPROC_SMOKE").is_some() {
        multiproc_smoke();
        return;
    }

    let addr = std::env::var("GCNRL_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7733".to_owned());
    let server = EvalServer::bind(&addr, server_config()).unwrap_or_else(|error| {
        panic!("failed to bind evaluation server on {addr}: {error}");
    });
    println!(
        "gcnrl evaluation server listening on {} (protocol v{})",
        server.local_addr(),
        gcnrl_serve::PROTOCOL_VERSION
    );

    // Sharded-tier peering: with the full ring in GCNRL_SERVE_PEERS, this
    // shard pulls mis-routed/re-hashed keys from their rendezvous owners
    // over CacheQuery/CacheFill instead of re-simulating.
    if let Some(peers) = gcnrl_telemetry::env_string("GCNRL_SERVE_PEERS") {
        let ring: Vec<String> = peers
            .split(',')
            .map(|addr| addr.trim().to_owned())
            .filter(|addr| !addr.is_empty())
            .collect();
        server.enable_peering(ring.clone(), server.local_addr().to_string());
        println!("peering enabled over ring {ring:?}");
    }

    // Optional introspection endpoint over the process-wide telemetry
    // registry: /metrics, /healthz, /readyz (wired to this server's drain
    // state and admission limits) and /traces. Strict-parsed: a malformed
    // address panics at startup.
    let metrics = gcnrl_telemetry::env_socket_addr("GCNRL_METRICS_ADDR").map(|addr| {
        let endpoint = MetricsHttpServer::bind_with(addr, server.readiness_check())
            .unwrap_or_else(|error| panic!("failed to bind metrics endpoint on {addr}: {error}"));
        println!("metrics endpoint listening on {}", endpoint.local_addr());
        endpoint
    });

    if let Some(clients) = env_usize("GCNRL_SERVE_SMOKE") {
        smoke(&server, metrics.as_ref(), clients.max(2));
        return;
    }

    // Serve until killed, logging a stats snapshot every 30 s once traffic
    // has arrived.
    let mut last_total = 0;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        let total = server.stats().connections_total;
        if total != last_total {
            last_total = total;
            print_stats(&server);
        }
    }
}
