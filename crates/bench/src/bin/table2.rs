//! Table II: Two-TIA per-metric breakdown plus the weighted-FoM variants
//! GCN-RL-1..5 (10x weight on BW, gain, power, noise, peaking respectively).
//!
//! Every row — the seven Table I methods and the five emphasis ablations —
//! is one [`MetricsCell`](gcnrl_bench::cells::MetricsCell) in a single work
//! queue drained by the sharded coordinator (`GCNRL_WORKERS` concurrent
//! cells, shared `GCNRL_CACHE_CAP` budget); the assembled table is identical
//! for any worker count.

use gcnrl_bench::cells::table2_cells;
use gcnrl_bench::{
    budget_from_env, drain_cells, print_merged_exec, write_json, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::TechnologyNode;

const METRICS: [&str; 6] = [
    "bw_ghz",
    "gain_ohm",
    "power_mw",
    "noise_pa_rthz",
    "peaking_db",
    "gbw_thz_ohm",
];

fn print_row(label: &str, metrics: &[(String, f64)]) {
    let get = |name: &str| {
        metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| format!("{v:11.3}"))
            .unwrap_or_else(|| format!("{:>11}", "-"))
    };
    let cells: Vec<String> = METRICS.iter().map(|m| get(m)).collect();
    println!("{label:<10} {}", cells.join(" "));
}

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let node = TechnologyNode::tsmc180();
    println!(
        "Table II — Two-TIA metrics (budget={}, seeds={}, {} workers)",
        cfg.budget, cfg.seeds, coord.workers
    );
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "Method", "BW(GHz)", "Gain(Ohm)", "Power(mW)", "Noise(pA)", "Peak(dB)", "GBW"
    );

    let report = drain_cells(table2_cells(&node, &cfg), &coord);
    let mut dump = Vec::new();
    for row in report.values() {
        print_row(&row.label, &row.metrics);
        dump.push((row.label.clone(), row.metrics.clone()));
    }
    print_merged_exec("evaluation engine — Table II queue", &report.merged_exec);
    write_json("table2", &dump);
}
