//! Table II: Two-TIA per-metric breakdown plus the weighted-FoM variants
//! GCN-RL-1..5 (10x weight on BW, gain, power, noise, peaking respectively).

use gcnrl::{AgentKind, FomConfig, GcnRlDesigner, SizingEnv};
use gcnrl_bench::{budget_from_env, run_method, write_json, ExperimentConfig};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_rl::DdpgConfig;

const METRICS: [&str; 6] = [
    "bw_ghz",
    "gain_ohm",
    "power_mw",
    "noise_pa_rthz",
    "peaking_db",
    "gbw_thz_ohm",
];

fn print_row(label: &str, metrics: &[(String, f64)]) {
    let get = |name: &str| {
        metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| format!("{v:11.3}"))
            .unwrap_or_else(|| format!("{:>11}", "-"))
    };
    let cells: Vec<String> = METRICS.iter().map(|m| get(m)).collect();
    println!("{label:<10} {}", cells.join(" "));
}

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let node = TechnologyNode::tsmc180();
    println!(
        "Table II — Two-TIA metrics (budget={}, seeds={})",
        cfg.budget, cfg.seeds
    );
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "Method", "BW(GHz)", "Gain(Ohm)", "Power(mW)", "Noise(pA)", "Peak(dB)", "GBW"
    );

    let mut dump = Vec::new();
    // Top half: all Table I methods, metric breakdown of their best design.
    for method in gcnrl_bench::METHODS {
        let h = run_method(method, Benchmark::TwoStageTia, &node, &cfg, 0);
        let metrics: Vec<(String, f64)> = h
            .best_report
            .as_ref()
            .map(|r| r.iter().map(|(k, v)| (k.to_owned(), v)).collect())
            .unwrap_or_default();
        print_row(method, &metrics);
        dump.push((method.to_string(), metrics));
    }

    // Bottom half: GCN-RL-1..5 with a 10x weight on one metric each.
    for (i, emphasised) in METRICS.iter().take(5).enumerate() {
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, cfg.calibration, 7)
            .with_weight_emphasis(emphasised, 10.0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let ddpg = DdpgConfig::default()
            .with_seed(100 + i as u64)
            .with_budget(cfg.budget, cfg.warmup.min(cfg.budget / 2));
        let h = GcnRlDesigner::with_kind(env, ddpg, AgentKind::Gcn).run();
        let metrics: Vec<(String, f64)> = h
            .best_report
            .as_ref()
            .map(|r| r.iter().map(|(k, v)| (k.to_owned(), v)).collect())
            .unwrap_or_default();
        let label = format!("GCN-RL-{}", i + 1);
        print_row(&label, &metrics);
        dump.push((label, metrics));
    }
    write_json("table2", &dump);
}
