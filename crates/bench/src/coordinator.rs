//! The sharded Table I coordinator: one work queue of
//! `(benchmark, node, method, seed)` cells drained by a worker pool.
//!
//! The table binaries used to run every cell sequentially in nested loops.
//! Here every cell becomes an independent shard with its own engine instance
//! carved out of a **shared cache/LRU budget** (`GCNRL_CACHE_CAP` split
//! evenly across the cells, so a 28-cell Table I run cannot exceed the same
//! memory bound a single run would), and the cells are drained concurrently
//! by `gcnrl-exec`'s [`WorkerPool`].  Each cell's engine is single-threaded —
//! the parallelism lives at the cell level, which avoids nested pools — and
//! every optimisation run is a deterministic function of its seed, so the
//! assembled results are **identical for any worker count** (pinned by the
//! `coordinator` integration test at 1/2/4 workers).
//!
//! When `GCNRL_CACHE_PATH` is set, all cells append to the same cache log
//! (see `gcnrl_exec::persist::CacheLog`), so concurrent shards share
//! simulation results across runs without a save-at-drop race.

use crate::harness::{
    merge_exec_stats, method_result_from_histories, run_method_with_engine, ExperimentConfig,
    MethodResult, METHODS,
};
use gcnrl::{EngineConfig, ExecStats, RunHistory};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_exec::WorkerPool;
use std::sync::mpsc::channel;

/// One schedulable cell of a table run.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Benchmark circuit of the cell.
    pub benchmark: Benchmark,
    /// Technology node of the cell.
    pub node: TechnologyNode,
    /// Method name (one of [`METHODS`]).
    pub method: String,
    /// Seed of the repetition.
    pub seed: u64,
}

/// The outcome of one drained cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell this result belongs to.
    pub spec: CellSpec,
    /// The optimisation trajectory of the cell.
    pub history: RunHistory,
    /// The cell engine's evaluation statistics.
    pub exec: ExecStats,
}

/// How the coordinator drains its queue.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Concurrent cells (worker threads draining the queue).
    pub workers: usize,
    /// Total cached reports across *all* cell engines; each cell gets an
    /// equal share (at least one entry).
    pub cache_budget: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_budget: 65_536,
        }
    }
}

impl CoordinatorConfig {
    /// Reads the configuration from environment variables, falling back to
    /// the defaults: `GCNRL_WORKERS` (concurrent cells, default: available
    /// parallelism), `GCNRL_CACHE_CAP` (shared cache budget).
    pub fn from_env() -> Self {
        let read = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        };
        let mut config = Self::default();
        if let Some(workers) = read("GCNRL_WORKERS") {
            config.workers = workers.max(1);
        }
        if let Some(budget) = read("GCNRL_CACHE_CAP") {
            config.cache_budget = budget.max(1);
        }
        config
    }

    /// Returns a copy with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Returns a copy with a different shared cache budget.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.cache_budget = budget.max(1);
        self
    }
}

/// Builds the full cell grid `benchmarks × METHODS × seeds` in table order.
pub fn table_cells(
    benchmarks: &[Benchmark],
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &benchmark in benchmarks {
        for method in METHODS {
            for seed in 0..cfg.seeds.max(1) {
                cells.push(CellSpec {
                    benchmark,
                    node: node.clone(),
                    method: method.to_owned(),
                    seed: seed as u64,
                });
            }
        }
    }
    cells
}

/// The engine configuration one cell runs under: single-threaded (the
/// parallelism is at the cell level), with an equal share of the coordinator's
/// cache budget; persistence (`GCNRL_CACHE_PATH`) is inherited from the
/// environment so all cells share one append-only log.
fn cell_engine_config(coord: &CoordinatorConfig, num_cells: usize) -> EngineConfig {
    EngineConfig::from_env()
        .with_threads(1)
        .with_cache_capacity((coord.cache_budget / num_cells.max(1)).max(1))
}

/// Drains `cells` through a pool of `coord.workers` threads and returns the
/// results in cell order.
///
/// Every cell is an independent deterministic computation, so the returned
/// histories and engine statistics do not depend on the worker count or on
/// the order in which the pool happens to schedule the cells.
///
/// # Panics
///
/// Re-raises the first cell panic on the calling thread (like the serial
/// loops it replaces would).
pub fn run_cells(
    cells: &[CellSpec],
    cfg: &ExperimentConfig,
    coord: &CoordinatorConfig,
) -> Vec<CellResult> {
    if cells.is_empty() {
        return Vec::new();
    }
    let engine = cell_engine_config(coord, cells.len());

    // A single worker needs no pool (and keeps panic backtraces direct).
    if coord.workers <= 1 || cells.len() == 1 {
        return cells
            .iter()
            .map(|spec| run_one(spec.clone(), cfg, engine.clone()))
            .collect();
    }

    type CellOutcome = Result<CellResult, Box<dyn std::any::Any + Send + 'static>>;
    let pool = WorkerPool::new(coord.workers.min(cells.len()));
    let (tx, rx) = channel::<(usize, CellOutcome)>();
    for (index, spec) in cells.iter().cloned().enumerate() {
        let tx = tx.clone();
        let cfg = *cfg;
        let engine = engine.clone();
        pool.execute(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_one(spec, &cfg, engine)
            }));
            // A closed receiver means the coordinator already panicked.
            let _ = tx.send((index, outcome));
        });
    }
    drop(tx);

    let mut results: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();
    for _ in 0..cells.len() {
        let (index, outcome) = rx.recv().expect("cell jobs always send an outcome");
        match outcome {
            Ok(result) => results[index] = Some(result),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every cell reports once"))
        .collect()
}

fn run_one(spec: CellSpec, cfg: &ExperimentConfig, engine: EngineConfig) -> CellResult {
    let (history, exec) = run_method_with_engine(
        &spec.method,
        spec.benchmark,
        &spec.node,
        cfg,
        spec.seed,
        engine,
    );
    CellResult {
        spec,
        history,
        exec,
    }
}

/// Folds the cell results of one benchmark into per-method [`MethodResult`]s
/// in table order (seeds grouped per method, engine statistics merged).
pub fn method_results(results: &[CellResult], benchmark: Benchmark) -> Vec<MethodResult> {
    METHODS
        .iter()
        .map(|method| {
            let mut histories = Vec::new();
            let mut stats = Vec::new();
            for cell in results {
                if cell.spec.benchmark == benchmark && cell.spec.method == *method {
                    histories.push(cell.history.clone());
                    stats.push(cell.exec);
                }
            }
            assert!(
                !histories.is_empty(),
                "no cells for method `{method}` on {benchmark}"
            );
            let mut result = method_result_from_histories(method, histories);
            result.exec = Some(merge_exec_stats(stats));
            result
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::TechnologyNode;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            budget: 6,
            warmup: 2,
            seeds: 2,
            calibration: 4,
            rollout_k: 1,
        }
    }

    #[test]
    fn table_cells_enumerate_benchmarks_methods_and_seeds_in_order() {
        let node = TechnologyNode::tsmc180();
        let cells = table_cells(
            &[Benchmark::TwoStageTia, Benchmark::Ldo],
            &node,
            &tiny_cfg(),
        );
        assert_eq!(cells.len(), 2 * METHODS.len() * 2);
        assert_eq!(cells[0].benchmark, Benchmark::TwoStageTia);
        assert_eq!(cells[0].method, "Human");
        assert_eq!(cells[0].seed, 0);
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells.last().unwrap().benchmark, Benchmark::Ldo);
        assert_eq!(cells.last().unwrap().method, "GCN-RL");
    }

    #[test]
    fn cell_engines_split_the_shared_cache_budget() {
        let coord = CoordinatorConfig::default()
            .with_workers(2)
            .with_cache_budget(100);
        let engine = cell_engine_config(&coord, 7);
        assert_eq!(engine.threads, 1);
        assert_eq!(engine.cache_capacity, 14);
        // The budget floor is one entry per cell.
        assert_eq!(cell_engine_config(&coord, 1000).cache_capacity, 1);
    }

    #[test]
    fn empty_queue_is_a_no_op() {
        let coord = CoordinatorConfig::default();
        assert!(run_cells(&[], &tiny_cfg(), &coord).is_empty());
    }
}
