//! The sharded experiment coordinator: one work queue of [`Cell`]s drained
//! by a worker pool under a shared cache budget.
//!
//! The table/figure binaries used to run every cell sequentially in bespoke
//! nested loops. Here every cell — whatever its shape: a `(benchmark, node,
//! method, seed)` Table I cell, a weighted-FoM ablation, a node- or
//! topology-transfer experiment, a learning-curve series — is an independent
//! shard described by the generic [`Cell`] trait:
//!
//! * an **id** (panic context and progress labelling),
//! * a **cache-budget weight** (its share of the coordinator's
//!   `GCNRL_CACHE_CAP` budget — transfer cells that run two optimisations
//!   get a proportionally larger slice),
//! * a **run closure** taking a [`CellContext`] with the carved-out engine
//!   configuration,
//! * a **mergeable output**: every cell reports its [`ExecStats`] alongside
//!   its value, and [`drain_cells`] folds them into one merged total.
//!
//! Cells are drained concurrently by `gcnrl-exec`'s [`WorkerPool`]. Each
//! cell's engine is single-threaded — the parallelism lives at the cell
//! level, which avoids nested pools — and every cell is a deterministic
//! function of its spec, so the assembled results are **identical for any
//! worker count** (pinned per ported binary by the `coordinator`
//! integration test at 1/2/4 workers).
//!
//! Inside one cell, all evaluation traffic (calibration sweep included) is
//! queue-fed: the harness opens an `EvalService` session over the cell's
//! engine, so the binaries and any future remote clients share one code
//! path into the solver.
//!
//! When `GCNRL_CACHE_PATH` is set, all cells append to the same cache log
//! (see `gcnrl_exec::persist::CacheLog`), so concurrent shards share
//! simulation results across runs without a save-at-drop race.

use crate::harness::{
    merge_exec_stats, method_result_from_histories, run_method_with_engine, ExperimentConfig,
    MethodResult, METHODS,
};
use gcnrl::{EngineConfig, ExecStats, RunHistory};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_exec::WorkerPool;
use std::sync::mpsc::channel;

/// One schedulable unit of an experiment run.
///
/// Implementations are cheap descriptions (a spec plus the experiment
/// config); all heavy work happens in [`Cell::run`], which receives the
/// engine configuration carved out of the coordinator's shared cache budget.
pub trait Cell: Send + 'static {
    /// What the cell produces besides its engine statistics.
    type Output: Send + 'static;

    /// Human-readable identity, used in panic messages and logs.
    fn id(&self) -> String;

    /// Relative share of the coordinator's cache budget (≥ 1). Cells that
    /// run several optimisations (e.g. pretrain + fine-tune) should claim a
    /// proportionally larger share.
    fn weight(&self) -> usize {
        1
    }

    /// Executes the cell under the given context and returns its output
    /// plus the engine statistics of all evaluation traffic it caused.
    fn run(&self, ctx: &CellContext) -> (Self::Output, ExecStats);
}

/// What the coordinator hands each cell at execution time.
#[derive(Debug, Clone)]
pub struct CellContext {
    /// The engine configuration for this cell: single-threaded (parallelism
    /// lives at the cell level), with this cell's share of the coordinator's
    /// cache budget; persistence is inherited from the environment so all
    /// cells share one append-only log.
    pub engine: EngineConfig,
}

/// One drained cell: its output and the engine statistics it accumulated.
#[derive(Debug, Clone)]
pub struct DrainedCell<T> {
    /// The cell's result value.
    pub value: T,
    /// Evaluation statistics of all engine traffic the cell caused.
    pub exec: ExecStats,
}

/// The result of draining a cell queue: per-cell outputs in queue order plus
/// the merged engine statistics across every cell.
#[derive(Debug, Clone)]
pub struct DrainReport<T> {
    /// Outputs in the order the cells were submitted.
    pub cells: Vec<DrainedCell<T>>,
    /// [`ExecStats`] folded across all cells (the mergeable output).
    pub merged_exec: ExecStats,
}

impl<T> DrainReport<T> {
    /// Strips the per-cell statistics, keeping the values in queue order.
    pub fn into_values(self) -> Vec<T> {
        self.cells.into_iter().map(|c| c.value).collect()
    }

    /// The values in queue order, by reference.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.cells.iter().map(|c| &c.value)
    }
}

/// How the coordinator drains its queue.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Concurrent cells (worker threads draining the queue).
    pub workers: usize,
    /// Total cached reports across *all* cell engines; each cell gets a
    /// weight-proportional share (at least one entry).
    pub cache_budget: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_budget: 65_536,
        }
    }
}

impl CoordinatorConfig {
    /// Reads the configuration from environment variables, falling back to
    /// the defaults: `GCNRL_WORKERS` (concurrent cells, default: available
    /// parallelism), `GCNRL_CACHE_CAP` (shared cache budget).
    ///
    /// # Panics
    ///
    /// Panics when a variable is set but unparseable (see
    /// [`gcnrl_exec::env_usize`]) — a typo must not silently fall back.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(workers) = gcnrl_exec::env_usize("GCNRL_WORKERS") {
            config.workers = workers.max(1);
        }
        if let Some(budget) = gcnrl_exec::env_usize("GCNRL_CACHE_CAP") {
            config.cache_budget = budget.max(1);
        }
        config
    }

    /// Returns a copy with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Returns a copy with a different shared cache budget.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.cache_budget = budget.max(1);
        self
    }
}

/// The engine configuration one cell runs under: single-threaded (the
/// parallelism is at the cell level), with a weight-proportional share of
/// the coordinator's cache budget; persistence (`GCNRL_CACHE_PATH`) is
/// inherited from the environment so all cells share one append-only log.
fn cell_engine_config(
    coord: &CoordinatorConfig,
    total_weight: usize,
    weight: usize,
) -> EngineConfig {
    let share = coord.cache_budget * weight.max(1) / total_weight.max(1);
    EngineConfig::from_env()
        .with_threads(1)
        .with_cache_capacity(share.max(1))
}

/// Drains `cells` through a pool of `coord.workers` threads and returns the
/// outputs in queue order together with the merged engine statistics.
///
/// Every cell is an independent deterministic computation, so the returned
/// outputs and statistics do not depend on the worker count or on the order
/// in which the pool happens to schedule the cells.
///
/// # Panics
///
/// Re-raises the first cell panic on the calling thread (like the serial
/// loops it replaces would), after printing the panicking cell's id.
pub fn drain_cells<C: Cell>(cells: Vec<C>, coord: &CoordinatorConfig) -> DrainReport<C::Output> {
    if cells.is_empty() {
        return DrainReport {
            cells: Vec::new(),
            merged_exec: ExecStats::default(),
        };
    }
    let total_weight: usize = cells.iter().map(|c| c.weight().max(1)).sum();
    let contexts: Vec<CellContext> = cells
        .iter()
        .map(|c| CellContext {
            engine: cell_engine_config(coord, total_weight, c.weight()),
        })
        .collect();

    // A single worker needs no pool (and keeps panic backtraces direct).
    let drained: Vec<DrainedCell<C::Output>> = if coord.workers <= 1 || cells.len() == 1 {
        cells
            .into_iter()
            .zip(&contexts)
            .map(|(cell, ctx)| {
                let (value, exec) = cell.run(ctx);
                DrainedCell { value, exec }
            })
            .collect()
    } else {
        type Outcome<T> = Result<DrainedCell<T>, Box<dyn std::any::Any + Send + 'static>>;
        let count = cells.len();
        let pool = WorkerPool::new(coord.workers.min(count));
        let (tx, rx) = channel::<(usize, Outcome<C::Output>)>();
        for (index, (cell, ctx)) in cells.into_iter().zip(contexts).enumerate() {
            let tx = tx.clone();
            pool.execute(move || {
                let id = cell.id();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let (value, exec) = cell.run(&ctx);
                    DrainedCell { value, exec }
                }));
                if outcome.is_err() {
                    eprintln!("gcnrl-bench: cell `{id}` panicked");
                }
                // A closed receiver means the coordinator already panicked.
                let _ = tx.send((index, outcome));
            });
        }
        drop(tx);

        let mut slots: Vec<Option<DrainedCell<C::Output>>> = (0..count).map(|_| None).collect();
        for _ in 0..count {
            let (index, outcome) = rx.recv().expect("cell jobs always send an outcome");
            match outcome {
                Ok(result) => slots[index] = Some(result),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every cell reports once"))
            .collect()
    };

    let merged_exec = merge_exec_stats(drained.iter().map(|c| c.exec));
    DrainReport {
        cells: drained,
        merged_exec,
    }
}

// ---------------------------------------------------------------------------
// The Table I method-grid cell — the original coordinator vocabulary, now a
// `Cell` implementation over the generic queue.
// ---------------------------------------------------------------------------

/// One schedulable cell of a method-grid (Table I-style) run.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Benchmark circuit of the cell.
    pub benchmark: Benchmark,
    /// Technology node of the cell.
    pub node: TechnologyNode,
    /// Method name (one of [`METHODS`]).
    pub method: String,
    /// Seed of the repetition.
    pub seed: u64,
}

/// The outcome of one drained method-grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell this result belongs to.
    pub spec: CellSpec,
    /// The optimisation trajectory of the cell.
    pub history: RunHistory,
    /// The cell engine's evaluation statistics.
    pub exec: ExecStats,
}

/// [`CellSpec`] bound to an experiment config: the `Cell` the method-grid
/// binaries (Table I, Figure 5, the per-metric tables' top halves) enqueue.
#[derive(Debug, Clone)]
pub struct MethodCell {
    /// The grid coordinates.
    pub spec: CellSpec,
    /// Budget/seed configuration of the run.
    pub cfg: ExperimentConfig,
}

impl Cell for MethodCell {
    type Output = CellResult;

    fn id(&self) -> String {
        format!(
            "{} {} on {} seed {}",
            self.spec.method, self.spec.benchmark, self.spec.node.name, self.spec.seed
        )
    }

    fn run(&self, ctx: &CellContext) -> (CellResult, ExecStats) {
        let (history, exec) = run_method_with_engine(
            &self.spec.method,
            self.spec.benchmark,
            &self.spec.node,
            &self.cfg,
            self.spec.seed,
            ctx.engine.clone(),
        );
        (
            CellResult {
                spec: self.spec.clone(),
                history,
                exec,
            },
            exec,
        )
    }
}

/// Builds the full cell grid `benchmarks × METHODS × seeds` in table order.
pub fn table_cells(
    benchmarks: &[Benchmark],
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &benchmark in benchmarks {
        for method in METHODS {
            for seed in 0..cfg.seeds.max(1) {
                cells.push(CellSpec {
                    benchmark,
                    node: node.clone(),
                    method: method.to_owned(),
                    seed: seed as u64,
                });
            }
        }
    }
    cells
}

/// Drains `cells` through the generic coordinator and returns the results in
/// cell order (see [`drain_cells`]).
pub fn run_cells(
    cells: &[CellSpec],
    cfg: &ExperimentConfig,
    coord: &CoordinatorConfig,
) -> Vec<CellResult> {
    let queue: Vec<MethodCell> = cells
        .iter()
        .map(|spec| MethodCell {
            spec: spec.clone(),
            cfg: *cfg,
        })
        .collect();
    drain_cells(queue, coord).into_values()
}

/// Folds the cell results of one benchmark into per-method [`MethodResult`]s
/// in table order (seeds grouped per method, engine statistics merged).
pub fn method_results(results: &[CellResult], benchmark: Benchmark) -> Vec<MethodResult> {
    METHODS
        .iter()
        .map(|method| {
            let mut histories = Vec::new();
            let mut stats = Vec::new();
            for cell in results {
                if cell.spec.benchmark == benchmark && cell.spec.method == *method {
                    histories.push(cell.history.clone());
                    stats.push(cell.exec);
                }
            }
            assert!(
                !histories.is_empty(),
                "no cells for method `{method}` on {benchmark}"
            );
            let mut result = method_result_from_histories(method, histories);
            result.exec = Some(merge_exec_stats(stats));
            result
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::TechnologyNode;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            budget: 6,
            warmup: 2,
            seeds: 2,
            calibration: 4,
            rollout_k: 1,
        }
    }

    #[test]
    fn table_cells_enumerate_benchmarks_methods_and_seeds_in_order() {
        let node = TechnologyNode::tsmc180();
        let cells = table_cells(
            &[Benchmark::TwoStageTia, Benchmark::Ldo],
            &node,
            &tiny_cfg(),
        );
        assert_eq!(cells.len(), 2 * METHODS.len() * 2);
        assert_eq!(cells[0].benchmark, Benchmark::TwoStageTia);
        assert_eq!(cells[0].method, "Human");
        assert_eq!(cells[0].seed, 0);
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells.last().unwrap().benchmark, Benchmark::Ldo);
        assert_eq!(cells.last().unwrap().method, "GCN-RL");
    }

    #[test]
    fn cell_engines_split_the_shared_cache_budget_by_weight() {
        let coord = CoordinatorConfig::default()
            .with_workers(2)
            .with_cache_budget(100);
        // Seven unit-weight cells: an even split.
        let engine = cell_engine_config(&coord, 7, 1);
        assert_eq!(engine.threads, 1);
        assert_eq!(engine.cache_capacity, 14);
        // A weight-3 cell in a total weight of 10 claims 3/10 of the budget.
        assert_eq!(cell_engine_config(&coord, 10, 3).cache_capacity, 30);
        // The budget floor is one entry per cell.
        assert_eq!(cell_engine_config(&coord, 1000, 1).cache_capacity, 1);
    }

    #[test]
    fn empty_queue_is_a_no_op() {
        let coord = CoordinatorConfig::default();
        assert!(run_cells(&[], &tiny_cfg(), &coord).is_empty());
        let report = drain_cells(Vec::<MethodCell>::new(), &coord);
        assert!(report.cells.is_empty());
        assert_eq!(report.merged_exec, ExecStats::default());
    }

    /// A trivial cell for exercising the generic drain machinery without
    /// simulator traffic.
    #[derive(Clone)]
    struct SquareCell {
        input: u64,
        weight: usize,
    }

    impl Cell for SquareCell {
        type Output = u64;

        fn id(&self) -> String {
            format!("square {}", self.input)
        }

        fn weight(&self) -> usize {
            self.weight
        }

        fn run(&self, ctx: &CellContext) -> (u64, ExecStats) {
            assert_eq!(ctx.engine.threads, 1, "cell engines are single-threaded");
            let exec = ExecStats {
                requests: 1,
                simulated: 1,
                cache_len: ctx.engine.cache_capacity as u64,
                ..ExecStats::default()
            };
            (self.input * self.input, exec)
        }
    }

    #[test]
    fn generic_cells_drain_in_order_with_merged_stats_for_any_worker_count() {
        let cells: Vec<SquareCell> = (0..9u64)
            .map(|input| SquareCell { input, weight: 1 })
            .collect();
        let expected: Vec<u64> = (0..9u64).map(|i| i * i).collect();
        for workers in [1usize, 2, 4] {
            let coord = CoordinatorConfig::default()
                .with_workers(workers)
                .with_cache_budget(900);
            let report = drain_cells(cells.clone(), &coord);
            let values: Vec<u64> = report.values().copied().collect();
            assert_eq!(values, expected, "workers={workers}");
            assert_eq!(report.merged_exec.requests, 9);
            assert_eq!(report.merged_exec.simulated, 9);
        }
    }

    #[test]
    fn heavier_cells_claim_a_larger_cache_share() {
        let mut cells: Vec<SquareCell> = (0..4u64)
            .map(|input| SquareCell { input, weight: 1 })
            .collect();
        cells.push(SquareCell {
            input: 4,
            weight: 4,
        });
        // Total weight 8 over a budget of 800: unit cells get 100, the
        // weight-4 cell 400 (reported back through the stats cache_len).
        let coord = CoordinatorConfig::default()
            .with_workers(2)
            .with_cache_budget(800);
        let report = drain_cells(cells, &coord);
        assert_eq!(report.cells[0].exec.cache_len, 100);
        assert_eq!(report.cells[4].exec.cache_len, 400);
    }

    #[test]
    fn cell_panics_surface_on_the_calling_thread() {
        struct BoomCell;
        impl Cell for BoomCell {
            type Output = ();
            fn id(&self) -> String {
                "boom".to_owned()
            }
            fn run(&self, _: &CellContext) -> ((), ExecStats) {
                panic!("cell exploded");
            }
        }
        for workers in [1usize, 3] {
            let coord = CoordinatorConfig::default().with_workers(workers);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drain_cells(vec![BoomCell], &coord)
            }))
            .expect_err("the panic must propagate");
            let message = caught
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| caught.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(message.contains("cell exploded"), "workers={workers}");
        }
    }
}
