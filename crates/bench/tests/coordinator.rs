//! Determinism of the sharded Table I coordinator: the same cell queue
//! drained by 1, 2 and 4 workers must produce identical cell results and
//! identical merged engine statistics (wall time excluded — it is the only
//! nondeterministic field).

use gcnrl::ExecStats;
use gcnrl_bench::{merge_exec_stats, run_cells, table_cells, CoordinatorConfig, ExperimentConfig};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        budget: 8,
        warmup: 3,
        seeds: 1,
        calibration: 4,
        rollout_k: 2,
    }
}

/// Zeroes the wall-clock field so the remaining counters can be compared
/// exactly across runs.
fn deterministic(stats: ExecStats) -> ExecStats {
    ExecStats {
        wall_seconds: 0.0,
        ..stats
    }
}

#[test]
fn shard_order_and_worker_count_do_not_change_the_table() {
    let node = TechnologyNode::tsmc180();
    let cfg = tiny_cfg();
    // Two benchmarks × 7 methods × 1 seed = 14 cells: enough to interleave
    // while staying CI-sized.
    let cells = table_cells(&[Benchmark::TwoStageTia, Benchmark::Ldo], &node, &cfg);

    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            let coord = CoordinatorConfig::default()
                .with_workers(workers)
                .with_cache_budget(4096);
            run_cells(&cells, &cfg, &coord)
        })
        .collect();

    let reference = &runs[0];
    for (run, workers) in runs.iter().zip([1usize, 2, 4]) {
        assert_eq!(run.len(), cells.len(), "workers={workers}");
        for (cell, expected) in run.iter().zip(reference.iter()) {
            assert_eq!(
                cell.history, expected.history,
                "workers={workers}: cell ({}, {}, seed {}) diverged",
                cell.spec.benchmark, cell.spec.method, cell.spec.seed
            );
            assert_eq!(
                deterministic(cell.exec),
                deterministic(expected.exec),
                "workers={workers}: exec stats of ({}, {}) diverged",
                cell.spec.benchmark,
                cell.spec.method
            );
        }
        // Merged totals across the whole queue are identical too.
        let merged = deterministic(merge_exec_stats(run.iter().map(|c| c.exec)));
        let merged_ref = deterministic(merge_exec_stats(reference.iter().map(|c| c.exec)));
        assert_eq!(merged, merged_ref, "workers={workers}: merged totals");
        assert!(merged.requests > 0, "the queue actually simulated");
    }
}
