//! Determinism of the sharded coordinator: the same cell queue drained by
//! 1, 2 and 4 workers must produce identical cell results and identical
//! merged engine statistics (wall time excluded — it is the only
//! nondeterministic field). Covered per ported binary: the Table I method
//! grid plus the Table II/III metric rows, the Table IV/V transfer cells
//! and the Figure 7/8 curve cells.

use gcnrl::ExecStats;
use gcnrl_bench::cells::{
    fig7_cells, fig8_cells, table2_cells, table3_cells, table4_cells, table5_cells,
};
use gcnrl_bench::{
    drain_cells, merge_exec_stats, run_cells, table_cells, Cell, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        budget: 8,
        warmup: 3,
        seeds: 1,
        calibration: 4,
        rollout_k: 2,
    }
}

/// An even smaller budget for the transfer cells (each runs a pretrain plus
/// a fine-tune per cell).
fn transfer_cfg() -> ExperimentConfig {
    ExperimentConfig {
        budget: 6,
        warmup: 2,
        seeds: 1,
        calibration: 3,
        rollout_k: 1,
    }
}

/// A CI-sized agent: determinism across worker counts does not depend on
/// the network size, and the paper-sized default (64 hidden, 7 GCN layers)
/// dominates the debug-build test wall clock.
fn tiny_ddpg() -> gcnrl_rl::DdpgConfig {
    gcnrl_rl::DdpgConfig {
        batch_size: 8,
        hidden_dim: 16,
        gcn_layers: 2,
        ..gcnrl_rl::DdpgConfig::default()
    }
}

/// Drains the same queue at 1, 2 and 4 workers and asserts identical
/// outputs, per-cell engine statistics and merged totals.
fn assert_drain_deterministic<C>(label: &str, cells: Vec<C>)
where
    C: Cell + Clone,
    C::Output: PartialEq + std::fmt::Debug,
{
    let worker_counts = [1usize, 2, 4];
    let runs: Vec<_> = worker_counts
        .iter()
        .map(|&workers| {
            let coord = CoordinatorConfig::default()
                .with_workers(workers)
                .with_cache_budget(4096);
            drain_cells(cells.clone(), &coord)
        })
        .collect();
    let reference = &runs[0];
    for (run, workers) in runs.iter().zip(worker_counts) {
        assert_eq!(run.cells.len(), reference.cells.len(), "{label}");
        for (i, (cell, expected)) in run.cells.iter().zip(&reference.cells).enumerate() {
            assert_eq!(
                cell.value, expected.value,
                "{label} workers={workers}: cell {i} value diverged"
            );
            assert_eq!(
                deterministic(cell.exec),
                deterministic(expected.exec),
                "{label} workers={workers}: cell {i} exec stats diverged"
            );
        }
        assert_eq!(
            deterministic(run.merged_exec),
            deterministic(reference.merged_exec),
            "{label} workers={workers}: merged totals diverged"
        );
        assert!(run.merged_exec.requests > 0, "{label}: queue simulated");
    }
}

/// Zeroes the wall-clock field so the remaining counters can be compared
/// exactly across runs.
fn deterministic(stats: ExecStats) -> ExecStats {
    ExecStats {
        wall_seconds: 0.0,
        ..stats
    }
}

#[test]
fn shard_order_and_worker_count_do_not_change_the_table() {
    let node = TechnologyNode::tsmc180();
    let cfg = tiny_cfg();
    // Two benchmarks × 7 methods × 1 seed = 14 cells: enough to interleave
    // while staying CI-sized.
    let cells = table_cells(&[Benchmark::TwoStageTia, Benchmark::Ldo], &node, &cfg);

    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            let coord = CoordinatorConfig::default()
                .with_workers(workers)
                .with_cache_budget(4096);
            run_cells(&cells, &cfg, &coord)
        })
        .collect();

    let reference = &runs[0];
    for (run, workers) in runs.iter().zip([1usize, 2, 4]) {
        assert_eq!(run.len(), cells.len(), "workers={workers}");
        for (cell, expected) in run.iter().zip(reference.iter()) {
            assert_eq!(
                cell.history, expected.history,
                "workers={workers}: cell ({}, {}, seed {}) diverged",
                cell.spec.benchmark, cell.spec.method, cell.spec.seed
            );
            assert_eq!(
                deterministic(cell.exec),
                deterministic(expected.exec),
                "workers={workers}: exec stats of ({}, {}) diverged",
                cell.spec.benchmark,
                cell.spec.method
            );
        }
        // Merged totals across the whole queue are identical too.
        let merged = deterministic(merge_exec_stats(run.iter().map(|c| c.exec)));
        let merged_ref = deterministic(merge_exec_stats(reference.iter().map(|c| c.exec)));
        assert_eq!(merged, merged_ref, "workers={workers}: merged totals");
        assert!(merged.requests > 0, "the queue actually simulated");
    }
}

// The per-binary sets below are shrunk to CI size: the full `METHODS` grid
// machinery (`MethodCell`) is already pinned at scale by
// `shard_order_and_worker_count_do_not_change_the_table`, so each set keeps
// just enough cells to cover every cell *kind* its binary enqueues.

#[test]
fn table2_metric_cells_are_deterministic_across_worker_counts() {
    let node = TechnologyNode::tsmc180();
    // Two method rows plus two weighted-FoM ablation rows.
    let cells: Vec<_> = table2_cells(&node, &tiny_cfg())
        .into_iter()
        .enumerate()
        .filter_map(|(i, c)| [0, 6, 7, 8].contains(&i).then_some(c))
        .map(|mut c| {
            c.ddpg = tiny_ddpg();
            c
        })
        .collect();
    assert_drain_deterministic("table2", cells);
}

#[test]
fn table3_metric_cells_are_deterministic_across_worker_counts() {
    let node = TechnologyNode::tsmc180();
    let mut cells = table3_cells(&node, &tiny_cfg());
    cells.truncate(3); // Human, Random, ES cover the Two-Volt method path.
    assert_drain_deterministic("table3", cells);
}

#[test]
fn table4_node_transfer_cells_are_deterministic_across_worker_counts() {
    let node = TechnologyNode::tsmc180();
    // One target node on one benchmark covers both the scratch and the
    // pretrain+fine-tune cell paths.
    let targets = [TechnologyNode::n65()];
    let mut cells = table4_cells(&[Benchmark::TwoStageTia], &node, &targets, &transfer_cfg());
    cells.iter_mut().for_each(|c| c.ddpg = tiny_ddpg());
    assert_drain_deterministic("table4", cells);
}

#[test]
fn table5_topology_transfer_cells_are_deterministic_across_worker_counts() {
    let node = TechnologyNode::tsmc180();
    let directions = [(Benchmark::TwoStageTia, Benchmark::ThreeStageTia)];
    let mut cells = table5_cells(&directions, &node, &transfer_cfg());
    cells.iter_mut().for_each(|c| c.ddpg = tiny_ddpg());
    assert_drain_deterministic("table5", cells);
}

#[test]
fn fig7_curve_cells_are_deterministic_across_worker_counts() {
    let source = TechnologyNode::tsmc180();
    let targets = [TechnologyNode::n45()];
    let mut cells = fig7_cells(Benchmark::ThreeStageTia, &source, &targets, &transfer_cfg());
    cells.iter_mut().for_each(|c| c.ddpg = tiny_ddpg());
    assert_drain_deterministic("fig7", cells);
}

#[test]
fn fig8_curve_cells_are_deterministic_across_worker_counts() {
    let node = TechnologyNode::tsmc180();
    let directions = [(Benchmark::ThreeStageTia, Benchmark::TwoStageTia)];
    let mut cells = fig8_cells(&directions, &node, &transfer_cfg());
    cells.iter_mut().for_each(|c| c.ddpg = tiny_ddpg());
    assert_drain_deterministic("fig8", cells);
}
