//! Tracing must observe, never perturb: a table run with `GCNRL_TRACE`
//! JSONL tracing enabled has to produce bit-identical results to the same
//! run with tracing off, and the trace it writes has to be non-empty and
//! schema-valid.

use gcnrl_bench::cells::{table2_cells, MetricsCellKind, MetricsRow};
use gcnrl_bench::{drain_cells, CoordinatorConfig, ExperimentConfig};
use gcnrl_circuit::TechnologyNode;
use serde::Value;

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        budget: 10,
        warmup: 4,
        seeds: 1,
        calibration: 6,
        rollout_k: 2,
    }
}

/// Runs a two-row slice of Table II (one baseline, one RL method, so both
/// the serial and the speculative-rollout engine paths execute) and returns
/// the assembled rows.
fn run_table_slice() -> Vec<MetricsRow> {
    let node = TechnologyNode::tsmc180();
    let cfg = tiny_cfg();
    let cells: Vec<_> = table2_cells(&node, &cfg)
        .into_iter()
        .filter(|cell| {
            matches!(&cell.kind, MetricsCellKind::Method(m) if m == "Random" || m == "GCN-RL")
        })
        .collect();
    assert_eq!(cells.len(), 2, "expected a Random and a GCN-RL cell");
    let coord = CoordinatorConfig {
        workers: 2,
        ..CoordinatorConfig::default()
    };
    drain_cells(cells, &coord).into_values()
}

#[test]
fn tracing_does_not_change_a_single_bit_and_writes_valid_jsonl() {
    let trace_path =
        std::env::temp_dir().join(format!("gcnrl-telemetry-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);

    // Pass 1: tracing on (the in-process equivalent of GCNRL_TRACE=path).
    gcnrl_telemetry::set_trace_file(&trace_path).expect("open trace file");
    let traced = run_table_slice();
    gcnrl_telemetry::disable_trace();

    // Pass 2: tracing off. Same cells, same seeds — the rows must match to
    // the last bit, or the observability layer is changing results.
    let untraced = run_table_slice();
    assert_eq!(traced, untraced, "tracing perturbed the experiment results");

    // The trace itself: non-empty, every line a schema-valid event covering
    // at least the engine batch and solver spans the runs must have hit.
    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let mut names = std::collections::BTreeSet::new();
    let mut events = 0usize;
    for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let value = serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("trace line {}: invalid JSON: {e}", i + 1));
        let Value::Map(entries) = &value else {
            panic!("trace line {}: not an object", i + 1);
        };
        let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match get("name") {
            Some(Value::Str(name)) if !name.is_empty() => {
                names.insert(name.clone());
            }
            other => panic!("trace line {}: bad `name`: {other:?}", i + 1),
        }
        for key in ["start_ns", "dur_ns"] {
            match get(key) {
                Some(Value::UInt(_)) => {}
                Some(Value::Int(v)) if *v >= 0 => {}
                other => panic!("trace line {}: bad `{key}`: {other:?}", i + 1),
            }
        }
        events += 1;
    }
    assert!(events > 0, "tracing was on but the trace file is empty");
    for expected in ["exec.batch.ns", "train.propose.ns", "train.evaluate.ns"] {
        assert!(
            names.contains(expected),
            "trace never recorded {expected}; spans seen: {names:?}"
        );
    }

    let _ = std::fs::remove_file(&trace_path);
}
