//! Dense-vs-sparse MNA solve benchmark: full AC sweeps over the paper's
//! benchmark circuits plus synthetic RC ladders that show the asymptotics.
//!
//! The dense baseline is the legacy per-point path (re-walk the element list,
//! allocate and LU-factorise a dense matrix at every frequency).  The sparse
//! path compiles the circuit once into `G + jωC` stamp slots and refactors
//! numerically against a symbolic-once sparse LU.  Besides the criterion
//! timings, the harness cross-checks that both paths agree to 1e-9 and writes
//! `BENCH_sim.json` with the measured speedups so the perf trajectory is
//! tracked in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use gcnrl_circuit::{benchmarks::Benchmark, ComponentKind, MosPolarity, TechnologyNode};
use gcnrl_linalg::Complex;
use gcnrl_sim::ac::log_sweep;
use gcnrl_sim::evaluators::{BiasTable, SmallSignalBuilder};
use gcnrl_sim::mosfet::MosDevice;
use gcnrl_sim::smallsignal::GROUND;
use gcnrl_sim::{solver_stats, AcCircuit, AcElement};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One dense-vs-sparse sweep comparison, as written to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
struct SweepCase {
    name: String,
    nodes: usize,
    freq_points: usize,
    dense_us: f64,
    sparse_us: f64,
    speedup: f64,
    max_rel_err: f64,
}

/// One rollout-shaped batch comparison (one base circuit, `k` sizing
/// perturbations): per-candidate full-refactor sweeps versus the batched
/// Sherman–Morrison–Woodbury update path.
#[derive(Debug, Serialize)]
struct RolloutCase {
    name: String,
    nodes: usize,
    /// Candidates per batch.
    k: usize,
    freq_points: usize,
    /// Per-candidate full-refactor baseline (`k` scalar sweeps), µs.
    refactor_us: f64,
    /// Batched update path (`CompiledAc::sweep_batch`), µs.
    batch_us: f64,
    speedup: f64,
    max_rel_err: f64,
}

#[derive(Debug, Serialize)]
struct BenchSimReport {
    cases: Vec<SweepCase>,
    rollout_cases: Vec<RolloutCase>,
    best_paper_speedup: f64,
    best_rollout_speedup: f64,
    solver_symbolic_analyses: u64,
    solver_sparse_refactors: u64,
    solver_sparse_solves: u64,
    solver_dense_factors: u64,
    solver_update_hits: u64,
    solver_refactor_fallbacks: u64,
    solver_cache_evictions: u64,
    /// Process-wide telemetry at the end of the run (assemble/factor/solve
    /// latency histograms for the sparse path under test).
    telemetry: gcnrl_telemetry::RegistrySnapshot,
}

/// Builds the linearised small-signal circuit of a paper benchmark at its
/// nominal sizing with a representative bias (the structure — node count and
/// sparsity pattern — is what the solver comparison depends on).
fn paper_circuit(b: Benchmark, node: &TechnologyNode) -> (AcCircuit, usize) {
    let circuit = b.circuit();
    let space = circuit.design_space(node);
    let pv = space.nominal();
    let builder = SmallSignalBuilder::new(&circuit, node);
    let mut bias = BiasTable::new();
    for comp in circuit.components() {
        let polarity = match comp.kind {
            ComponentKind::Nmos => MosPolarity::Nmos,
            ComponentKind::Pmos => MosPolarity::Pmos,
            _ => continue,
        };
        let sizing = pv.get(comp.id).as_mos().expect("transistor sizing");
        let dev = MosDevice::new(sizing, node.mos(polarity));
        bias.insert(&comp.name, dev.operating_point(50e-6, 0.9));
    }
    let (mut ac, _noise) = builder.build(&pv, &bias);
    let (input, output) = match b {
        Benchmark::TwoStageTia | Benchmark::ThreeStageTia => ("vin", "vout"),
        Benchmark::TwoStageVoltageAmp => ("vin_p", "vout"),
        Benchmark::Ldo => ("vfb", "vout"),
    };
    ac.add(AcElement::CurrentSource {
        a: GROUND,
        b: builder.ac_node(input),
        value: Complex::ONE,
    });
    (ac, builder.ac_node(output))
}

/// Synthetic RC ladder with `n` nodes: tridiagonal structure whose dense
/// solve cost grows as `n^3` while the sparse path stays linear.
fn ladder_circuit(n: usize) -> (AcCircuit, usize) {
    let mut ckt = AcCircuit::new(n);
    for i in 0..n {
        let prev = if i == 0 { GROUND } else { i - 1 };
        ckt.add(AcElement::Conductance {
            a: prev,
            b: i,
            g: 1e-3,
        });
        ckt.add(AcElement::Capacitance {
            a: i,
            b: GROUND,
            c: 1e-12,
        });
    }
    ckt.add(AcElement::CurrentSource {
        a: GROUND,
        b: 0,
        value: Complex::ONE,
    });
    (ckt, n - 1)
}

/// Full sweep through the legacy dense path: per-point element walk,
/// allocation and dense LU.
fn dense_sweep(ckt: &AcCircuit, output: usize, freqs: &[f64]) -> Vec<Complex> {
    freqs
        .iter()
        .map(|&f| ckt.solve(f).expect("dense solve")[output])
        .collect()
}

/// Full sweep through the compiled path (includes the one-time compile, as
/// every evaluation pays it exactly once).
fn sparse_sweep(ckt: &AcCircuit, output: usize, freqs: &[f64]) -> Vec<Complex> {
    let mut compiled = ckt.compile().expect("compile");
    compiled
        .sweep_voltages(output, freqs)
        .expect("compiled sweep")
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

/// Median wall time of `runs` executions, in microseconds.
fn time_us<F: FnMut()>(mut f: F, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Builds a rollout-shaped family around `ckt`: the base gains a grounded
/// conductance + capacitance tap at `tap`, and each of the `k` candidates
/// scales those two tap values (same topology and stamp slots as the base,
/// one perturbed matrix row — the shape a sizing-perturbation round produces).
fn rollout_family(ckt: &AcCircuit, tap: usize, k: usize) -> (AcCircuit, Vec<AcCircuit>) {
    let with_tap = |scale: f64| {
        let mut tapped = ckt.clone();
        tapped.add(AcElement::Conductance {
            a: tap,
            b: GROUND,
            g: 1e-5 * scale,
        });
        tapped.add(AcElement::Capacitance {
            a: tap,
            b: GROUND,
            c: 1e-14 * scale,
        });
        tapped
    };
    let base = with_tap(1.0);
    let candidates = (0..k)
        .map(|i| with_tap(1.0 + 0.3 * (i + 1) as f64))
        .collect();
    (base, candidates)
}

/// Measures one rollout batch: `k` per-candidate full-refactor scalar sweeps
/// against one `sweep_batch` call over the shared base factorisation.
fn rollout_case(
    name: &str,
    ckt: &AcCircuit,
    output: usize,
    tap: usize,
    k: usize,
    freqs: &[f64],
) -> RolloutCase {
    let (base_ckt, candidate_ckts) = rollout_family(ckt, tap, k);

    // Correctness first: the batched update path must match per-candidate
    // full-refactor sweeps to 1e-9 at every point.
    let mut base = base_ckt.compile().expect("compile base");
    let mut candidates: Vec<_> = candidate_ckts
        .iter()
        .map(|c| c.compile().expect("compile candidate"))
        .collect();
    let batch = base
        .sweep_batch(output, freqs, &mut candidates)
        .expect("batched sweep");
    let mut max_rel_err = 0.0f64;
    for (ckt, swept) in candidate_ckts.iter().zip(&batch) {
        let mut reference = ckt.compile().expect("compile reference");
        let expect = reference
            .sweep_voltages_scalar(output, freqs)
            .expect("reference sweep");
        for ((_, v0), (_, v1)) in swept.iter().zip(&expect) {
            max_rel_err = max_rel_err.max((*v0 - *v1).abs() / (1.0 + v1.abs()));
        }
    }
    assert!(
        max_rel_err < 1e-9,
        "{name}: update path diverges from refactor ({max_rel_err:.3e})"
    );

    let runs = 15;
    let mut scalar_sims: Vec<_> = candidate_ckts
        .iter()
        .map(|c| c.compile().expect("compile"))
        .collect();
    let refactor_us = time_us(
        || {
            for sim in &mut scalar_sims {
                black_box(
                    sim.sweep_voltages_scalar(output, freqs)
                        .expect("scalar sweep"),
                );
            }
        },
        runs,
    );
    let batch_us = time_us(
        || {
            black_box(
                base.sweep_batch(output, freqs, &mut candidates)
                    .expect("batched sweep"),
            );
        },
        runs,
    );
    RolloutCase {
        name: name.to_owned(),
        nodes: base_ckt.num_nodes(),
        k,
        freq_points: freqs.len(),
        refactor_us,
        batch_us,
        speedup: refactor_us / batch_us,
        max_rel_err,
    }
}

fn compare_case(name: &str, ckt: &AcCircuit, output: usize, freqs: &[f64]) -> SweepCase {
    // Correctness first: full node vectors must agree to 1e-9 at every point.
    let mut compiled = ckt.compile().expect("compile");
    let mut max_rel_err = 0.0f64;
    for &f in freqs {
        let dense = ckt.solve(f).expect("dense solve");
        let sparse = compiled.solve_at(f).expect("sparse solve");
        for (d, s) in dense.iter().zip(&sparse) {
            let err = (*d - *s).abs() / (1.0 + d.abs());
            max_rel_err = max_rel_err.max(err);
        }
    }
    assert!(
        max_rel_err < 1e-9,
        "{name}: sparse/dense disagree ({max_rel_err:.3e})"
    );

    let runs = 15;
    let dense_us = time_us(|| drop(black_box(dense_sweep(ckt, output, freqs))), runs);
    let sparse_us = time_us(|| drop(black_box(sparse_sweep(ckt, output, freqs))), runs);
    SweepCase {
        name: name.to_owned(),
        nodes: ckt.num_nodes(),
        freq_points: freqs.len(),
        dense_us,
        sparse_us,
        speedup: dense_us / sparse_us,
        max_rel_err,
    }
}

fn bench_sweeps(c: &mut Criterion) {
    let node = TechnologyNode::tsmc180();
    solver_stats::reset();
    let freqs = log_sweep(1e3, 100e9, 12);
    let mut cases: Vec<SweepCase> = Vec::new();

    let mut group = c.benchmark_group("sim_full_sweep");
    group.sample_size(10);
    for b in Benchmark::ALL {
        let (ckt, out) = paper_circuit(b, &node);
        group.bench_function(format!("{}_dense", b.paper_name()), |bench| {
            bench.iter(|| black_box(dense_sweep(&ckt, out, &freqs)));
        });
        group.bench_function(format!("{}_sparse", b.paper_name()), |bench| {
            bench.iter(|| black_box(sparse_sweep(&ckt, out, &freqs)));
        });
        cases.push(compare_case(b.paper_name(), &ckt, out, &freqs));
    }
    for n in [20usize, 50, 100] {
        let (ckt, out) = ladder_circuit(n);
        let ladder_freqs = log_sweep(1e3, 1e9, 4);
        group.bench_function(format!("ladder_{n}_dense"), |bench| {
            bench.iter(|| black_box(dense_sweep(&ckt, out, &ladder_freqs)));
        });
        group.bench_function(format!("ladder_{n}_sparse"), |bench| {
            bench.iter(|| black_box(sparse_sweep(&ckt, out, &ladder_freqs)));
        });
        cases.push(compare_case(
            &format!("ladder_{n}"),
            &ckt,
            out,
            &ladder_freqs,
        ));
    }
    group.finish();

    // Rollout-shaped batches: one base, k sizing perturbations, the shape a
    // speculative-rollout round hands the solver.  Per-candidate refactor
    // sweeps versus the batched Sherman–Morrison–Woodbury update path.
    let mut rollout_cases: Vec<RolloutCase> = Vec::new();
    let mut rollout_group = c.benchmark_group("sim_rollout_batch");
    rollout_group.sample_size(10);
    for b in Benchmark::ALL {
        let (ckt, out) = paper_circuit(b, &node);
        for k in [4usize, 8] {
            let name = format!("{}_k{}", b.paper_name(), k);
            rollout_group.bench_function(format!("{name}_batch"), |bench| {
                let (base_ckt, candidate_ckts) = rollout_family(&ckt, out, k);
                let mut base = base_ckt.compile().expect("compile base");
                let mut candidates: Vec<_> = candidate_ckts
                    .iter()
                    .map(|c| c.compile().expect("compile"))
                    .collect();
                bench.iter(|| {
                    black_box(
                        base.sweep_batch(out, &freqs, &mut candidates)
                            .expect("batched sweep"),
                    )
                });
            });
            rollout_cases.push(rollout_case(&name, &ckt, out, out, k, &freqs));
        }
    }
    {
        let (ckt, out) = ladder_circuit(50);
        let ladder_freqs = log_sweep(1e3, 1e9, 4);
        rollout_cases.push(rollout_case(
            "ladder_50_k8",
            &ckt,
            out,
            out,
            8,
            &ladder_freqs,
        ));
    }
    rollout_group.finish();

    let best_paper_speedup = cases
        .iter()
        .take(Benchmark::ALL.len())
        .map(|c| c.speedup)
        .fold(0.0f64, f64::max);
    println!("\nfull-sweep speedups (dense / sparse wall time):");
    for case in &cases {
        println!(
            "  {:<16} {:>3} nodes  {:>4} pts  dense {:>10.1} µs  sparse {:>10.1} µs  {:>6.2}x  (max rel err {:.2e})",
            case.name, case.nodes, case.freq_points, case.dense_us, case.sparse_us, case.speedup,
            case.max_rel_err,
        );
    }
    let best_rollout_speedup = rollout_cases
        .iter()
        .filter(|c| c.k == 8 && c.name != "ladder_50_k8")
        .map(|c| c.speedup)
        .fold(0.0f64, f64::max);
    println!("\nrollout-batch speedups (per-candidate refactor / batched update wall time):");
    for case in &rollout_cases {
        println!(
            "  {:<24} {:>3} nodes  k={}  {:>4} pts  refactor {:>10.1} µs  batch {:>10.1} µs  {:>6.2}x  (max rel err {:.2e})",
            case.name, case.nodes, case.k, case.freq_points, case.refactor_us, case.batch_us,
            case.speedup, case.max_rel_err,
        );
    }
    let stats = solver_stats::snapshot();
    println!("solver: {}", stats.summary());
    // The rollout batches must actually ride the update path (not fall back
    // to refactoring every candidate).
    assert!(
        stats.update_hits > 0,
        "rollout batches never hit the update path: {}",
        stats.summary()
    );
    // Wall-clock gate for the update machinery: k = 8 rollout batches on the
    // paper circuits must at least halve the per-candidate refactor cost.
    assert!(
        best_rollout_speedup >= 2.0,
        "batched update path regressed, best k=8 paper speedup was {best_rollout_speedup:.2}x"
    );
    // Deterministic structural check: the whole run must amortise a handful
    // of symbolic analyses over very many numeric refactorisations.
    assert!(
        stats.symbolic_analyses <= 16 && stats.reuse_ratio() > 100.0,
        "symbolic analyses not amortised: {}",
        stats.summary()
    );
    // Wall-clock sanity floor.  The measured best is ~3.2x (see
    // BENCH_sim.json); the hard gate is looser so scheduler jitter on a
    // shared 1-CPU CI runner cannot fail an unrelated PR, and a genuine
    // regression to ~parity still does.
    assert!(
        best_paper_speedup >= 2.0,
        "sparse sweep regressed to near-dense speed, best was {best_paper_speedup:.2}x"
    );
    if best_paper_speedup < 3.0 {
        println!(
            "WARNING: best paper-benchmark speedup {best_paper_speedup:.2}x below the 3x target \
             (noisy runner?) — see BENCH_sim.json for the tracked trajectory"
        );
    }

    let report = BenchSimReport {
        cases,
        rollout_cases,
        best_paper_speedup,
        best_rollout_speedup,
        solver_symbolic_analyses: stats.symbolic_analyses,
        solver_sparse_refactors: stats.sparse_refactors,
        solver_sparse_solves: stats.sparse_solves,
        solver_dense_factors: stats.dense_factors,
        solver_update_hits: stats.update_hits,
        solver_refactor_fallbacks: stats.refactor_fallbacks,
        solver_cache_evictions: stats.cache_evictions,
        telemetry: gcnrl_telemetry::global().snapshot(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    let path = std::env::var("BENCH_SIM_PATH")
        .unwrap_or_else(|_| format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
