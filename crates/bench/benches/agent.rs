//! Micro-benchmarks of the GCN agent: actor inference, critic evaluation and
//! one full DDPG update, for both the GCN and the non-GCN (ablation) variant.

use criterion::{criterion_group, criterion_main, Criterion};
use gcnrl::{AgentKind, FomConfig, GcnAgent, SizingEnv};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_linalg::Matrix;
use std::hint::black_box;

fn setup(kind: AgentKind) -> (GcnAgent, Matrix, Matrix) {
    let node = TechnologyNode::tsmc180();
    let fom = FomConfig::calibrated(Benchmark::ThreeStageTia, &node, 4, 0);
    let env = SizingEnv::new(Benchmark::ThreeStageTia, &node, fom);
    let agent = GcnAgent::new(
        kind,
        env.states().cols(),
        64,
        7,
        &env.component_types(),
        1e-3,
        1e-3,
        0,
    );
    (agent, env.states().clone(), env.adjacency().clone())
}

fn bench_agent(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent");
    group.sample_size(20);
    for (label, kind) in [("gcn", AgentKind::Gcn), ("non_gcn", AgentKind::NonGcn)] {
        let (mut agent, states, adj) = setup(kind);
        group.bench_function(format!("actor_forward_{label}"), |b| {
            b.iter(|| black_box(agent.act(black_box(&states), black_box(&adj))));
        });
        let actions = agent.act(&states, &adj);
        group.bench_function(format!("critic_forward_{label}"), |b| {
            b.iter(|| black_box(agent.critic_forward(&states, &actions, &adj).0));
        });
        let batch: Vec<(Matrix, f64)> = (0..16)
            .map(|i| {
                (
                    Matrix::filled(states.rows(), 3, (i as f64) / 16.0 - 0.5),
                    i as f64 * 0.1,
                )
            })
            .collect();
        group.bench_function(format!("ddpg_update_{label}"), |b| {
            b.iter(|| {
                agent.critic_update(&states, &adj, &batch, 0.0);
                agent.actor_update(&states, &adj)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_agent);
criterion_main!(benches);
