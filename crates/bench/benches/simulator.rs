//! Micro-benchmarks of the analog simulator: one full performance evaluation
//! per benchmark circuit (the quantity that dominates every optimisation run,
//! standing in for the paper's SPICE calls).

use criterion::{criterion_group, criterion_main, Criterion};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_sim::evaluators::evaluator_for;
use std::hint::black_box;

fn bench_evaluators(c: &mut Criterion) {
    let node = TechnologyNode::tsmc180();
    let mut group = c.benchmark_group("simulator_evaluate");
    group.sample_size(20);
    for b in Benchmark::ALL {
        let eval = evaluator_for(b, &node);
        let circuit = b.circuit();
        let space = circuit.design_space(&node);
        let pv = space.nominal();
        group.bench_function(b.paper_name(), |bench| {
            bench.iter(|| black_box(eval.evaluate(black_box(&pv))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluators);
criterion_main!(benches);
