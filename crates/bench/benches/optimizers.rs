//! End-to-end optimiser throughput at a tiny, fixed simulation budget: the
//! relative per-step cost of every Table I method (the paper's observation
//! that BO/MACE are compute-bound while RL/ES are simulation-bound).

use criterion::{criterion_group, criterion_main, Criterion};
use gcnrl_bench::{run_method, ExperimentConfig};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use std::hint::black_box;

fn bench_optimizers(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        budget: 20,
        warmup: 8,
        seeds: 1,
        calibration: 6,
        rollout_k: 1,
    };
    let node = TechnologyNode::tsmc180();
    let mut group = c.benchmark_group("optimizer_20_steps");
    group.sample_size(10);
    for method in ["Random", "ES", "BO", "MACE", "NG-RL", "GCN-RL"] {
        group.bench_function(method, |b| {
            b.iter(|| {
                black_box(run_method(
                    method,
                    Benchmark::TwoStageTia,
                    &node,
                    black_box(&cfg),
                    0,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
