//! Pipelined vs blocking remote evaluation throughput over real loopback TCP.
//!
//! The question, answered in `BENCH_serve.json`: with a latency-bound
//! service (a fixed sleep per candidate — the regime of the paper's external
//! SPICE processes) and 32 concurrent remote clients, how much aggregate
//! throughput does protocol-v3 pipelining buy over the strictly blocking
//! window-of-1 wire discipline of protocol v2?
//!
//! Each scenario binds a fresh reactor server whose Two-TIA service wraps a
//! [`LatencyEvaluator`] on a wide worker pool, then runs every client on its
//! own thread: submit all batches into the configured pipeline window,
//! collect all replies, stop the clock when the last client finishes. The
//! candidates are identical across scenarios (unique *within* a run so the
//! cache never short-circuits the sleep), so the pipelined reports must be
//! bit-identical to the blocking ones.
//!
//! Acceptance gate: pipelining must at least **double** aggregate throughput
//! in this latency-bound configuration. The sleeps overlap even on a
//! single-core runner, so the gate holds in CI.

use gcnrl_circuit::{benchmarks::Benchmark, ComponentParams, ParamVector, TechnologyNode};
use gcnrl_exec::testing::LatencyEvaluator;
use gcnrl_exec::{BatchEvaluator, EngineConfig, EvalService, ServiceConfig};
use gcnrl_serve::{
    EvalServer, RegistryConfig, RemoteBackend, RemoteConfig, ServerConfig, ShardedBackend,
    ShardedConfig,
};
use gcnrl_sim::PerformanceReport;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Concurrent remote clients (the CI smoke scale).
const CLIENTS: usize = 32;
/// Batches each client pushes through the wire.
const BATCHES: usize = 64;
/// Pipeline window of the pipelined scenario; `1` is the blocking baseline.
const WINDOW: usize = 8;
/// Simulated per-candidate simulator latency.
const LATENCY: Duration = Duration::from_millis(4);
/// Engine worker threads — enough to overlap every in-flight candidate of
/// the pipelined scenario (`CLIENTS * WINDOW`), so the measured difference
/// is the wire discipline, not engine starvation.
const THREADS: usize = CLIENTS * WINDOW;

/// Engine worker threads of ONE shard in the scaling scenario. Deliberately
/// scarce: each shard is a fixed unit of simulation capacity
/// (`SHARD_THREADS / SHARD_LATENCY` candidates per second), so the
/// 32-client offered load saturates a single shard and aggregate throughput
/// scales with the shard count — even on a single-core runner, because the
/// capacity is sleep-bound, not CPU-bound.
const SHARD_THREADS: usize = 8;
/// Per-candidate latency in the scaling scenario: higher than the
/// pipelining scenario's so the sleep-bound capacity dwarfs the per-frame
/// CPU cost that serialises on a single-core runner.
const SHARD_LATENCY: Duration = Duration::from_millis(16);
/// Candidates each client routes across the ring in the scaling scenario.
const SHARD_CANDIDATES: usize = 32;
/// Candidates per pipelined sub-batch in the scaling scenario.
const SHARD_SUB_BATCH: usize = 8;

const BENCHMARK: Benchmark = Benchmark::TwoStageTia;

#[derive(Debug, Serialize)]
struct Scenario {
    window: usize,
    wall_s: f64,
    batches: usize,
    /// Aggregate batches per second across all clients.
    throughput: f64,
    connections_total: u64,
}

#[derive(Debug, Serialize)]
struct ShardScenario {
    shards: usize,
    wall_s: f64,
    candidates: usize,
    /// Aggregate candidates per second across all clients.
    throughput: f64,
}

#[derive(Debug, Serialize)]
struct BenchServeReport {
    clients: usize,
    batches_per_client: usize,
    latency_ms: f64,
    engine_threads: usize,
    blocking: Scenario,
    pipelined: Scenario,
    /// `pipelined.throughput / blocking.throughput`.
    speedup: f64,
    /// Horizontal scaling: the same 32-client latency-bound offered load
    /// against 1, 2 and 4 shards of `SHARD_THREADS` engine threads each.
    shard_scaling: Vec<ShardScenario>,
    /// `shard_scaling[2 shards].throughput / shard_scaling[1 shard].…`.
    shard_speedup: f64,
    /// Cross-shard `CacheFill` pulls witnessed on shard 0 when a plain
    /// (unsharded) client asked it for the whole warmed candidate set.
    cross_shard_fills: u64,
    /// Process-wide telemetry at the end of every scenario — the
    /// handshake/frame/queue-wait latency histograms behind the numbers.
    telemetry: gcnrl_telemetry::RegistrySnapshot,
}

/// The batch every client `c` sends as its `b`-th request: one candidate,
/// unique across the whole run so every evaluation pays the full latency.
fn batch(client: usize, index: usize) -> Vec<ParamVector> {
    let unique = (client * BATCHES + index) as f64;
    vec![ParamVector::new(vec![ComponentParams::Resistance(
        100.0 + unique,
    )])]
}

/// Binds a fresh server whose Two-TIA service is the latency-bound stand-in
/// on a pool wide enough for every in-flight candidate.
fn open_server() -> EvalServer {
    let server = EvalServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            registry: RegistryConfig {
                engine: EngineConfig::serial(),
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let service = EvalService::new(
        BatchEvaluator::new(
            Box::new(LatencyEvaluator::new(LATENCY)),
            EngineConfig::serial().with_threads(THREADS),
        ),
        ServiceConfig::default(),
    );
    server
        .registry()
        .insert_service(BENCHMARK, &TechnologyNode::tsmc180(), service);
    server
}

/// Runs all clients against a fresh server with the given pipeline window,
/// returning the scenario stats and every client's reports in submit order.
fn run_scenario(window: usize) -> (Scenario, Vec<Vec<PerformanceReport>>) {
    let server = open_server();
    let addr = server.local_addr();
    let node = TechnologyNode::tsmc180();

    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let node = node.clone();
            std::thread::spawn(move || {
                let remote = RemoteBackend::connect_with(
                    addr,
                    BENCHMARK,
                    &node,
                    RemoteConfig {
                        session: Some(format!("bench-{window}-{client}")),
                        pipeline: window,
                        ..RemoteConfig::default()
                    },
                )
                .expect("client connect");
                // Fill the window before collecting anything: with window 1
                // this degenerates to the blocking submit/wait lockstep, with
                // a wider window the submits overlap the replies in flight.
                let mut reports = Vec::with_capacity(BATCHES);
                let mut pending = std::collections::VecDeque::new();
                for index in 0..BATCHES {
                    pending.push_back(remote.submit_batch(&batch(client, index)).expect("submit"));
                    while pending.len() >= window.max(1) {
                        let reply = pending.pop_front().expect("pending reply");
                        reports.extend(reply.wait().expect("reply"));
                    }
                }
                for reply in pending {
                    reports.extend(reply.wait().expect("reply"));
                }
                remote.goodbye().expect("goodbye");
                reports
            })
        })
        .collect();
    let reports: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_active, 0, "connections not drained");
    let batches = CLIENTS * BATCHES;
    (
        Scenario {
            window,
            wall_s: wall,
            batches,
            throughput: batches as f64 / wall,
            connections_total: stats.connections_total,
        },
        reports,
    )
}

/// The candidate every client `c` routes as its `i`-th in the scaling
/// scenario: unique across the run, identical across shard counts, so the
/// 2- and 4-shard reports must be bit-identical to the 1-shard run.
fn shard_candidate(client: usize, index: usize) -> ParamVector {
    let unique = (client * SHARD_CANDIDATES + index) as f64;
    ParamVector::new(vec![ComponentParams::Resistance(50_000.0 + unique)])
}

/// Binds `n` peered shard servers, each one fixed unit of latency-bound
/// simulation capacity (`SHARD_THREADS` engine threads).
fn open_shards(n: usize) -> (Vec<EvalServer>, Vec<String>) {
    let servers: Vec<EvalServer> = (0..n)
        .map(|_| {
            let server = EvalServer::bind(
                "127.0.0.1:0",
                ServerConfig {
                    registry: RegistryConfig {
                        engine: EngineConfig::serial(),
                        ..RegistryConfig::default()
                    },
                    ..ServerConfig::default()
                },
            )
            .expect("bind shard server");
            let service = EvalService::new(
                BatchEvaluator::new(
                    Box::new(LatencyEvaluator::new(SHARD_LATENCY)),
                    EngineConfig::serial().with_threads(SHARD_THREADS),
                ),
                ServiceConfig::default(),
            );
            server
                .registry()
                .insert_service(BENCHMARK, &TechnologyNode::tsmc180(), service);
            server
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    for server in &servers {
        server.enable_peering(addrs.clone(), server.local_addr().to_string());
    }
    (servers, addrs)
}

/// Runs all clients through a [`ShardedBackend`] over `shards` fresh shard
/// servers. Returns the scenario stats, every client's reports in submit
/// order, and the still-running servers (for the CacheFill witness phase).
fn run_sharded(shards: usize) -> (ShardScenario, Vec<Vec<PerformanceReport>>, Vec<EvalServer>) {
    let (servers, addrs) = open_shards(shards);
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let backend = ShardedBackend::connect(
                    &addrs,
                    BENCHMARK,
                    &TechnologyNode::tsmc180(),
                    ShardedConfig {
                        remote: RemoteConfig {
                            session: Some(format!("shard-bench-{shards}-{client}")),
                            ..RemoteConfig::default()
                        },
                        // Small sub-batches: the whole batch rides each
                        // shard's wire as an overlapping pipeline.
                        sub_batch: SHARD_SUB_BATCH,
                        ..ShardedConfig::default()
                    },
                )
                .expect("sharded connect");
                let batch: Vec<ParamVector> = (0..SHARD_CANDIDATES)
                    .map(|index| shard_candidate(client, index))
                    .collect();
                let reports = backend.try_evaluate_batch(&batch).expect("sharded batch");
                backend.goodbye().expect("goodbye");
                reports
            })
        })
        .collect();
    let reports: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    let candidates = CLIENTS * SHARD_CANDIDATES;
    (
        ShardScenario {
            shards,
            wall_s: wall,
            candidates,
            throughput: candidates as f64 / wall,
        },
        reports,
        servers,
    )
}

fn main() {
    let (blocking, blocking_reports) = run_scenario(1);
    println!(
        "blocking  (window 1): {} batches in {:.3}s = {:.0} batches/s",
        blocking.batches, blocking.wall_s, blocking.throughput
    );
    let (pipelined, pipelined_reports) = run_scenario(WINDOW);
    println!(
        "pipelined (window {WINDOW}): {} batches in {:.3}s = {:.0} batches/s",
        pipelined.batches, pipelined.wall_s, pipelined.throughput
    );

    // Pipelining must not change a single bit: same candidates, same wire,
    // same reports, only the overlap differs.
    assert_eq!(
        pipelined_reports, blocking_reports,
        "pipelined reports diverged from the blocking baseline"
    );

    let speedup = pipelined.throughput / blocking.throughput;
    println!("aggregate throughput speedup: {speedup:.2}x");
    // Acceptance gate: at 32 latency-bound clients the pipelined wire must
    // at least double the blocking aggregate throughput.
    assert!(
        speedup >= 2.0,
        "pipelining must at least double latency-bound aggregate throughput; \
         measured {speedup:.2}x (blocking {:.0}/s, pipelined {:.0}/s)",
        blocking.throughput,
        pipelined.throughput
    );

    // --- Horizontal shard scaling: same offered load, 1 → 2 → 4 shards ---
    let mut shard_scaling = Vec::new();
    let (solo, solo_reports, solo_servers) = run_sharded(1);
    println!(
        "sharded (1 shard):  {} candidates in {:.3}s = {:.0} cand/s",
        solo.candidates, solo.wall_s, solo.throughput
    );
    for server in solo_servers {
        server.shutdown();
    }
    let (dual, dual_reports, dual_servers) = run_sharded(2);
    println!(
        "sharded (2 shards): {} candidates in {:.3}s = {:.0} cand/s",
        dual.candidates, dual.wall_s, dual.throughput
    );
    assert_eq!(
        dual_reports, solo_reports,
        "2-shard reports diverged from the single-shard run"
    );
    // CacheFill witness: a plain (unsharded) client asks shard 0 for the
    // whole warmed set. The shard-1-owned half is a local miss owned by the
    // peer — shard 0 must pull those reports over CacheQuery/CacheFill
    // instead of re-simulating them, bit-identically.
    let full_set: Vec<ParamVector> = (0..CLIENTS)
        .flat_map(|client| (0..SHARD_CANDIDATES).map(move |index| shard_candidate(client, index)))
        .collect();
    let witness = RemoteBackend::connect(
        dual_servers[0].local_addr(),
        BENCHMARK,
        &TechnologyNode::tsmc180(),
    )
    .expect("witness connect");
    let witness_reports = witness
        .try_evaluate_batch(&full_set)
        .expect("witness batch");
    let flat_reference: Vec<PerformanceReport> = solo_reports.iter().flatten().cloned().collect();
    assert_eq!(
        witness_reports, flat_reference,
        "peer-filled reports diverged from the single-shard run"
    );
    witness.goodbye().expect("witness goodbye");
    let cross_shard_fills = dual_servers[0].stats().peer_fills;
    println!("cross-shard CacheFill pulls on shard 0: {cross_shard_fills}");
    assert!(
        cross_shard_fills > 0,
        "the witness client triggered no cross-shard CacheFill"
    );
    for server in dual_servers {
        server.shutdown();
    }
    let (quad, quad_reports, quad_servers) = run_sharded(4);
    println!(
        "sharded (4 shards): {} candidates in {:.3}s = {:.0} cand/s",
        quad.candidates, quad.wall_s, quad.throughput
    );
    assert_eq!(
        quad_reports, solo_reports,
        "4-shard reports diverged from the single-shard run"
    );
    for server in quad_servers {
        server.shutdown();
    }
    let shard_speedup = dual.throughput / solo.throughput;
    println!("2-shard aggregate throughput speedup: {shard_speedup:.2}x");
    // Acceptance gate: doubling the shards must buy at least 1.6x aggregate
    // throughput on the latency-bound 32-client workload.
    assert!(
        shard_speedup >= 1.6,
        "2 shards must scale latency-bound aggregate throughput by >= 1.6x; \
         measured {shard_speedup:.2}x ({:.0} cand/s vs {:.0} cand/s)",
        solo.throughput,
        dual.throughput
    );
    shard_scaling.push(solo);
    shard_scaling.push(dual);
    shard_scaling.push(quad);

    let report = BenchServeReport {
        clients: CLIENTS,
        batches_per_client: BATCHES,
        latency_ms: LATENCY.as_secs_f64() * 1e3,
        engine_threads: THREADS,
        blocking,
        pipelined,
        speedup,
        shard_scaling,
        shard_speedup,
        cross_shard_fills,
        telemetry: gcnrl_telemetry::global().snapshot(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    let path = std::env::var("BENCH_SERVE_PATH")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
