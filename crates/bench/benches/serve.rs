//! Pipelined vs blocking remote evaluation throughput over real loopback TCP.
//!
//! The question, answered in `BENCH_serve.json`: with a latency-bound
//! service (a fixed sleep per candidate — the regime of the paper's external
//! SPICE processes) and 32 concurrent remote clients, how much aggregate
//! throughput does protocol-v3 pipelining buy over the strictly blocking
//! window-of-1 wire discipline of protocol v2?
//!
//! Each scenario binds a fresh reactor server whose Two-TIA service wraps a
//! [`LatencyEvaluator`] on a wide worker pool, then runs every client on its
//! own thread: submit all batches into the configured pipeline window,
//! collect all replies, stop the clock when the last client finishes. The
//! candidates are identical across scenarios (unique *within* a run so the
//! cache never short-circuits the sleep), so the pipelined reports must be
//! bit-identical to the blocking ones.
//!
//! Acceptance gate: pipelining must at least **double** aggregate throughput
//! in this latency-bound configuration. The sleeps overlap even on a
//! single-core runner, so the gate holds in CI.

use gcnrl_circuit::{benchmarks::Benchmark, ComponentParams, ParamVector, TechnologyNode};
use gcnrl_exec::testing::LatencyEvaluator;
use gcnrl_exec::{BatchEvaluator, EngineConfig, EvalService, ServiceConfig};
use gcnrl_serve::{EvalServer, RegistryConfig, RemoteBackend, RemoteConfig, ServerConfig};
use gcnrl_sim::PerformanceReport;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Concurrent remote clients (the CI smoke scale).
const CLIENTS: usize = 32;
/// Batches each client pushes through the wire.
const BATCHES: usize = 64;
/// Pipeline window of the pipelined scenario; `1` is the blocking baseline.
const WINDOW: usize = 8;
/// Simulated per-candidate simulator latency.
const LATENCY: Duration = Duration::from_millis(4);
/// Engine worker threads — enough to overlap every in-flight candidate of
/// the pipelined scenario (`CLIENTS * WINDOW`), so the measured difference
/// is the wire discipline, not engine starvation.
const THREADS: usize = CLIENTS * WINDOW;

const BENCHMARK: Benchmark = Benchmark::TwoStageTia;

#[derive(Debug, Serialize)]
struct Scenario {
    window: usize,
    wall_s: f64,
    batches: usize,
    /// Aggregate batches per second across all clients.
    throughput: f64,
    connections_total: u64,
}

#[derive(Debug, Serialize)]
struct BenchServeReport {
    clients: usize,
    batches_per_client: usize,
    latency_ms: f64,
    engine_threads: usize,
    blocking: Scenario,
    pipelined: Scenario,
    /// `pipelined.throughput / blocking.throughput`.
    speedup: f64,
    /// Process-wide telemetry at the end of both scenarios — the
    /// handshake/frame/queue-wait latency histograms behind the numbers.
    telemetry: gcnrl_telemetry::RegistrySnapshot,
}

/// The batch every client `c` sends as its `b`-th request: one candidate,
/// unique across the whole run so every evaluation pays the full latency.
fn batch(client: usize, index: usize) -> Vec<ParamVector> {
    let unique = (client * BATCHES + index) as f64;
    vec![ParamVector::new(vec![ComponentParams::Resistance(
        100.0 + unique,
    )])]
}

/// Binds a fresh server whose Two-TIA service is the latency-bound stand-in
/// on a pool wide enough for every in-flight candidate.
fn open_server() -> EvalServer {
    let server = EvalServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            registry: RegistryConfig {
                engine: EngineConfig::serial(),
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let service = EvalService::new(
        BatchEvaluator::new(
            Box::new(LatencyEvaluator::new(LATENCY)),
            EngineConfig::serial().with_threads(THREADS),
        ),
        ServiceConfig::default(),
    );
    server
        .registry()
        .insert_service(BENCHMARK, &TechnologyNode::tsmc180(), service);
    server
}

/// Runs all clients against a fresh server with the given pipeline window,
/// returning the scenario stats and every client's reports in submit order.
fn run_scenario(window: usize) -> (Scenario, Vec<Vec<PerformanceReport>>) {
    let server = open_server();
    let addr = server.local_addr();
    let node = TechnologyNode::tsmc180();

    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let node = node.clone();
            std::thread::spawn(move || {
                let remote = RemoteBackend::connect_with(
                    addr,
                    BENCHMARK,
                    &node,
                    RemoteConfig {
                        session: Some(format!("bench-{window}-{client}")),
                        pipeline: window,
                        ..RemoteConfig::default()
                    },
                )
                .expect("client connect");
                // Fill the window before collecting anything: with window 1
                // this degenerates to the blocking submit/wait lockstep, with
                // a wider window the submits overlap the replies in flight.
                let mut reports = Vec::with_capacity(BATCHES);
                let mut pending = std::collections::VecDeque::new();
                for index in 0..BATCHES {
                    pending.push_back(remote.submit_batch(&batch(client, index)).expect("submit"));
                    while pending.len() >= window.max(1) {
                        let reply = pending.pop_front().expect("pending reply");
                        reports.extend(reply.wait().expect("reply"));
                    }
                }
                for reply in pending {
                    reports.extend(reply.wait().expect("reply"));
                }
                remote.goodbye().expect("goodbye");
                reports
            })
        })
        .collect();
    let reports: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_active, 0, "connections not drained");
    let batches = CLIENTS * BATCHES;
    (
        Scenario {
            window,
            wall_s: wall,
            batches,
            throughput: batches as f64 / wall,
            connections_total: stats.connections_total,
        },
        reports,
    )
}

fn main() {
    let (blocking, blocking_reports) = run_scenario(1);
    println!(
        "blocking  (window 1): {} batches in {:.3}s = {:.0} batches/s",
        blocking.batches, blocking.wall_s, blocking.throughput
    );
    let (pipelined, pipelined_reports) = run_scenario(WINDOW);
    println!(
        "pipelined (window {WINDOW}): {} batches in {:.3}s = {:.0} batches/s",
        pipelined.batches, pipelined.wall_s, pipelined.throughput
    );

    // Pipelining must not change a single bit: same candidates, same wire,
    // same reports, only the overlap differs.
    assert_eq!(
        pipelined_reports, blocking_reports,
        "pipelined reports diverged from the blocking baseline"
    );

    let speedup = pipelined.throughput / blocking.throughput;
    println!("aggregate throughput speedup: {speedup:.2}x");
    // Acceptance gate: at 32 latency-bound clients the pipelined wire must
    // at least double the blocking aggregate throughput.
    assert!(
        speedup >= 2.0,
        "pipelining must at least double latency-bound aggregate throughput; \
         measured {speedup:.2}x (blocking {:.0}/s, pipelined {:.0}/s)",
        blocking.throughput,
        pipelined.throughput
    );

    let report = BenchServeReport {
        clients: CLIENTS,
        batches_per_client: BATCHES,
        latency_ms: LATENCY.as_secs_f64() * 1e3,
        engine_threads: THREADS,
        blocking,
        pipelined,
        speedup,
        telemetry: gcnrl_telemetry::global().snapshot(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    let path = std::env::var("BENCH_SERVE_PATH")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
