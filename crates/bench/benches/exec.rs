//! Serial-vs-parallel evaluation of an optimiser-sized candidate population
//! through `gcnrl-exec`, plus the cached-repeat case.
//!
//! This is the acceptance benchmark for the execution engine: on a
//! 64-candidate population the batched path with ≥4 worker threads must beat
//! the serial evaluator loop, and a repeated batch must be served from the
//! content-addressed cache with bit-identical metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use gcnrl_circuit::{benchmarks::Benchmark, ComponentParams, ParamVector, TechnologyNode};
use gcnrl_exec::testing::LatencyEvaluator;
use gcnrl_exec::{BatchEvaluator, EngineConfig};
use gcnrl_sim::evaluators::{evaluator_for, Evaluator};
use std::hint::black_box;
use std::time::Duration;

const POPULATION: usize = 64;

fn population(node: &TechnologyNode) -> Vec<ParamVector> {
    let circuit = Benchmark::TwoStageTia.circuit();
    let space = circuit.design_space(node);
    (0..POPULATION)
        .map(|i| {
            let unit: Vec<f64> = (0..space.num_parameters())
                .map(|j| ((i * 37 + j * 11) % 101) as f64 / 100.0)
                .collect();
            space.from_unit(&unit)
        })
        .collect()
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let node = TechnologyNode::tsmc180();
    let candidates = population(&node);
    let mut group = c.benchmark_group(format!("exec_population_{POPULATION}"));
    group.sample_size(10);

    // Baseline: the pre-engine call path — a serial loop over the evaluator.
    let evaluator = evaluator_for(Benchmark::TwoStageTia, &node);
    group.bench_function("serial_evaluator_loop", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|pv| black_box(evaluator.evaluate(black_box(pv))))
                .collect::<Vec<_>>()
        });
    });

    // Batched path at increasing worker counts. A fresh engine per iteration
    // keeps the cache cold so this measures simulation fan-out, not caching.
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("batch_{threads}_threads_cold_cache"), |b| {
            b.iter(|| {
                let engine = BatchEvaluator::for_benchmark(
                    Benchmark::TwoStageTia,
                    &node,
                    EngineConfig::serial().with_threads(threads),
                );
                black_box(engine.evaluate_batch(black_box(&candidates)))
            });
        });
    }

    // Warm cache: the same population again is pure cache service.
    let warm = BatchEvaluator::for_benchmark(
        Benchmark::TwoStageTia,
        &node,
        EngineConfig::serial().with_threads(4),
    );
    let reference = warm.evaluate_batch(&candidates);
    group.bench_function("batch_4_threads_warm_cache", |b| {
        b.iter(|| black_box(warm.evaluate_batch(black_box(&candidates))));
    });
    group.finish();

    // Acceptance checks, printed alongside the timings: repeated evaluation
    // has a non-zero hit rate and returns bit-identical reports.
    let repeat = warm.evaluate_batch(&candidates);
    assert_eq!(repeat, reference, "cached batch must be bit-identical");
    let stats = warm.stats();
    assert!(stats.hit_rate() > 0.0, "repeat batches must hit the cache");
    println!("\nwarm engine: {}", stats.summary());
}

fn bench_latency_bound(c: &mut Criterion) {
    const LATENCY: Duration = Duration::from_millis(2);
    const N: usize = 32;
    let candidates: Vec<ParamVector> = (0..N)
        .map(|i| ParamVector::new(vec![ComponentParams::Resistance(100.0 + i as f64)]))
        .collect();
    let mut group = c.benchmark_group(format!("exec_latency_bound_{N}"));
    group.sample_size(10);

    let serial = LatencyEvaluator::new(LATENCY);
    group.bench_function("serial_evaluator_loop", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|pv| black_box(serial.evaluate(black_box(pv))))
                .collect::<Vec<_>>()
        });
    });
    for threads in [4usize, 8] {
        group.bench_function(format!("batch_{threads}_threads_cold_cache"), |b| {
            b.iter(|| {
                let engine = BatchEvaluator::new(
                    Box::new(LatencyEvaluator::new(LATENCY)),
                    EngineConfig::serial().with_threads(threads),
                );
                black_box(engine.evaluate_batch(black_box(&candidates)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serial_vs_parallel, bench_latency_bound);
criterion_main!(benches);
