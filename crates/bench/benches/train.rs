//! Serial (`k = 1`) vs speculative batched (`k = 4/8/16`) exploration.
//!
//! Two questions, answered in `BENCH_train.json`:
//!
//! 1. **Latency-bound time-to-quality** — with a simulator that costs wall
//!    time per call (a 2 ms latency wrapper around the real Two-TIA
//!    evaluator, the regime of the paper's external SPICE processes), how
//!    fast does batched exploration reach the serial trainer's best FoM?
//!    Rollout rounds are evaluated as one engine batch, so `k` candidates
//!    overlap on the worker pool; the acceptance gate is **≤ ½ of the serial
//!    wall-clock** for some `k ≥ 4`.  Sleeps overlap even on a single-core
//!    container, so this is the scaling witness CI can check.
//! 2. **Equal-budget quality** — on all four paper benchmarks (real,
//!    CPU-bound evaluators), does best-of-`k` training at the *same
//!    simulation budget* match or beat the serial trainer's final best FoM?
//!
//! The FoM trajectories are deterministic per seed (evaluators are pure and
//! the latency wrapper does not change results), so only the measured wall
//! times vary between machines.

use gcnrl::{EngineConfig, FomConfig, GcnRlDesigner, SizingEnv, StateEncoding};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_rl::DdpgConfig;
use gcnrl_sim::evaluators::{evaluator_for, Evaluator};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Simulated per-call simulator latency (the external-process regime).
const LATENCY: Duration = Duration::from_millis(2);
/// Worker threads of the latency-bound engine.
const THREADS: usize = 8;
/// Simulation budget of every run (warm-up included).
const BUDGET: usize = 40;
/// Warm-up episodes of the latency-bound runs.
const LATENCY_WARMUP: usize = 8;
/// Warm-up episodes of the equal-budget quality runs.
const QUALITY_WARMUP: usize = 12;
/// Seeds averaged in the equal-budget comparison.
const QUALITY_SEEDS: [u64; 5] = [0, 1, 2, 3, 4];
/// Rollout widths compared against serial.
const WIDTHS: [usize; 3] = [4, 8, 16];
/// Rollout widths checked by the equal-budget quality gate.
const QUALITY_WIDTHS: [usize; 2] = [4, 8];

/// Delegates to the real evaluator after a fixed sleep: same reports, SPICE
/// economics.
struct LatencyWrapped {
    inner: Box<dyn Evaluator>,
    delay: Duration,
}

impl Evaluator for LatencyWrapped {
    fn benchmark(&self) -> Benchmark {
        self.inner.benchmark()
    }

    fn technology(&self) -> &TechnologyNode {
        self.inner.technology()
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        self.inner.metric_specs()
    }

    fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
        std::thread::sleep(self.delay);
        self.inner.evaluate(params)
    }
}

#[derive(Debug, Serialize)]
struct LatencyCase {
    k: usize,
    total_wall_s: f64,
    final_fom: f64,
    /// Wall seconds until the best-so-far FoM matched the serial trainer's
    /// final best (absent when the run never reached it).
    wall_to_serial_best_s: Option<f64>,
    /// `serial_wall_s / wall_to_serial_best_s`.
    time_to_quality_speedup: Option<f64>,
}

#[derive(Debug, Serialize)]
struct QualityCase {
    benchmark: String,
    k: usize,
    final_foms: Vec<f64>,
    mean_final_fom: f64,
    mean_wall_s: f64,
}

#[derive(Debug, Serialize)]
struct BenchTrainReport {
    latency_ms: f64,
    threads: usize,
    budget: usize,
    serial_wall_s: f64,
    serial_best_fom: f64,
    latency_cases: Vec<LatencyCase>,
    best_time_to_quality_speedup: f64,
    quality: Vec<QualityCase>,
    /// Process-wide telemetry at the end of the run — the
    /// propose/evaluate/learn and engine-batch latency histograms behind the
    /// wall-clock numbers above.
    telemetry: gcnrl_telemetry::RegistrySnapshot,
}

fn latency_env(node: &TechnologyNode) -> SizingEnv {
    // Calibrate against the raw evaluator (no sleeps), then wrap it.
    let engine = EngineConfig::serial().with_threads(THREADS);
    let fom = FomConfig::calibrated_with_engine(
        Benchmark::TwoStageTia,
        node,
        20,
        7,
        EngineConfig::serial(),
    );
    SizingEnv::with_custom_evaluator(
        Benchmark::TwoStageTia,
        node,
        fom,
        StateEncoding::ScalarIndex,
        engine,
        Box::new(LatencyWrapped {
            inner: evaluator_for(Benchmark::TwoStageTia, node),
            delay: LATENCY,
        }),
    )
}

/// Runs one latency-bound training and returns `(best-curve of (elapsed,
/// best_fom) per round, total wall, final best)`.
fn run_latency(node: &TechnologyNode, k: usize) -> (Vec<(f64, f64)>, f64, f64) {
    let env = latency_env(node);
    let config = DdpgConfig::default()
        .with_seed(0)
        .with_budget(BUDGET, LATENCY_WARMUP)
        .with_rollout_k(k);
    let mut designer = GcnRlDesigner::new(env, config);
    let start = Instant::now();
    let mut marks: Vec<(f64, f64)> = Vec::new();
    let history = designer.run_observed(&mut |h| {
        marks.push((start.elapsed().as_secs_f64(), h.best_fom()));
    });
    let wall = start.elapsed().as_secs_f64();
    (marks, wall, history.best_fom())
}

fn quality_case(benchmark: Benchmark, node: &TechnologyNode, k: usize) -> QualityCase {
    let fom = FomConfig::calibrated(benchmark, node, 20, 7);
    let mut finals = Vec::new();
    let mut walls = Vec::new();
    for &seed in &QUALITY_SEEDS {
        let env = SizingEnv::with_engine_config(
            benchmark,
            node,
            fom.clone(),
            StateEncoding::ScalarIndex,
            EngineConfig::serial(),
        );
        let config = DdpgConfig::default()
            .with_seed(seed)
            .with_budget(BUDGET, QUALITY_WARMUP)
            .with_rollout_k(k);
        let start = Instant::now();
        let history = GcnRlDesigner::new(env, config).run();
        walls.push(start.elapsed().as_secs_f64());
        finals.push(history.best_fom());
    }
    let mean = finals.iter().sum::<f64>() / finals.len() as f64;
    QualityCase {
        benchmark: benchmark.paper_name().to_owned(),
        k,
        final_foms: finals,
        mean_final_fom: mean,
        mean_wall_s: walls.iter().sum::<f64>() / walls.len() as f64,
    }
}

fn main() {
    let node = TechnologyNode::tsmc180();

    // ---- Part 1: latency-bound time-to-quality --------------------------
    let (_, serial_wall, serial_best) = run_latency(&node, 1);
    println!(
        "latency-bound serial (k=1): wall {:.3}s, best FoM {serial_best:.4}",
        serial_wall
    );

    let mut latency_cases = Vec::new();
    for k in WIDTHS {
        let (marks, wall, final_fom) = run_latency(&node, k);
        let reached = marks
            .iter()
            .find(|&&(_, best)| best >= serial_best)
            .map(|&(t, _)| t);
        let speedup = reached.map(|t| serial_wall / t);
        println!(
            "latency-bound k={k}: wall {wall:.3}s, best {final_fom:.4}, reached serial best {}",
            match (reached, speedup) {
                (Some(t), Some(s)) => format!("after {t:.3}s ({s:.1}x faster than serial)"),
                _ => "never".to_owned(),
            }
        );
        latency_cases.push(LatencyCase {
            k,
            total_wall_s: wall,
            final_fom,
            wall_to_serial_best_s: reached,
            time_to_quality_speedup: speedup,
        });
    }
    let best_speedup = latency_cases
        .iter()
        .filter_map(|c| c.time_to_quality_speedup)
        .fold(0.0f64, f64::max);
    // Acceptance gate: some k >= 4 reaches the serial trainer's best FoM in
    // at most half the serial wall-clock on the latency-bound configuration.
    assert!(
        best_speedup >= 2.0,
        "batched exploration must reach the serial best FoM in <= 1/2 the \
         serial wall-clock; best time-to-quality speedup was {best_speedup:.2}x"
    );

    // ---- Part 2: equal-budget quality on the paper benchmarks -----------
    let mut quality = Vec::new();
    for benchmark in Benchmark::ALL {
        let serial = quality_case(benchmark, &node, 1);
        for k in QUALITY_WIDTHS {
            let batched = quality_case(benchmark, &node, k);
            println!(
                "{:<12} equal budget ({} sims x {} seeds): serial {:.4}, best-of-{k} {:.4}",
                serial.benchmark,
                BUDGET,
                QUALITY_SEEDS.len(),
                serial.mean_final_fom,
                batched.mean_final_fom
            );
            assert!(
                batched.mean_final_fom >= serial.mean_final_fom,
                "{}: best-of-{k} at equal simulation budget must match or beat \
                 the serial final FoM (serial {:.6}, batched {:.6})",
                serial.benchmark,
                serial.mean_final_fom,
                batched.mean_final_fom
            );
            quality.push(batched);
        }
        quality.push(serial);
    }

    let report = BenchTrainReport {
        latency_ms: LATENCY.as_secs_f64() * 1e3,
        threads: THREADS,
        budget: BUDGET,
        serial_wall_s: serial_wall,
        serial_best_fom: serial_best,
        latency_cases,
        best_time_to_quality_speedup: best_speedup,
        quality,
        telemetry: gcnrl_telemetry::global().snapshot(),
    };
    gcnrl_bench::print_latency_table();
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    let path = std::env::var("BENCH_TRAIN_PATH")
        .unwrap_or_else(|_| format!("{}/../../BENCH_train.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, json).expect("write BENCH_train.json");
    println!("wrote {path}");
}
