//! Property-based tests for the circuit crate: design-space denormalisation,
//! refinement, and graph normalisation invariants.

use gcnrl_circuit::{benchmarks, ParamBounds, ParamScale, Refiner, TechnologyNode, TopologyGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any action in [-1, 1]^n denormalises to a sizing inside the bounds, for
    /// every benchmark circuit and every technology node.
    #[test]
    fn denormalised_actions_always_legal(
        seed_actions in prop::collection::vec(-1.0f64..1.0, 3 * 20),
        node_idx in 0usize..5,
        bench_idx in 0usize..4,
    ) {
        let bench = benchmarks::Benchmark::ALL[bench_idx];
        let circuit = bench.circuit();
        let node = TechnologyNode::all()[node_idx].clone();
        let space = circuit.design_space(&node);
        let actions: Vec<Vec<f64>> = space
            .action_sizes()
            .iter()
            .enumerate()
            .map(|(i, n)| (0..*n).map(|j| seed_actions[(i * 3 + j) % seed_actions.len()]).collect())
            .collect();
        let pv = space.denormalize(&actions);
        prop_assert!(space.validate(&pv));
    }

    /// Refinement is idempotent and always produces matched groups.
    #[test]
    fn refinement_idempotent_and_matching(
        unit in prop::collection::vec(0.0f64..1.0, 60),
        bench_idx in 0usize..4,
    ) {
        let bench = benchmarks::Benchmark::ALL[bench_idx];
        let circuit = bench.circuit();
        let node = TechnologyNode::tsmc180();
        let space = circuit.design_space(&node);
        let flat: Vec<f64> = (0..space.num_parameters()).map(|i| unit[i % unit.len()]).collect();
        let pv = space.from_unit(&flat);
        let refiner = Refiner::new(&circuit);
        let refined = refiner.refine(&space, &pv);
        prop_assert!(refiner.is_matched(&refined));
        prop_assert_eq!(refiner.refine(&space, &refined), refined);
    }

    /// Normalised adjacency row sums are bounded by 1 + degree contribution,
    /// and the matrix is symmetric for arbitrary random graphs.
    #[test]
    fn normalized_adjacency_symmetric(edges in prop::collection::vec((0usize..10, 0usize..10), 0..30)) {
        let g = TopologyGraph::from_edges(10, &edges);
        let a = g.normalized_adjacency();
        for i in 0..10 {
            for j in 0..10 {
                prop_assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    /// ParamBounds::denormalize output is always inside [lo, hi] and
    /// to_unit(from_unit(u)) stays close to u for gridless linear parameters.
    #[test]
    fn bounds_round_trip(u in 0.0f64..1.0, lo in 0.1f64..10.0, span in 0.5f64..100.0) {
        let b = ParamBounds { lo, hi: lo + span, scale: ParamScale::Linear, grid: None, integer: false };
        let v = b.from_unit(u);
        prop_assert!(b.contains(v));
        prop_assert!((b.to_unit(v) - u).abs() < 1e-9);
    }
}
