use serde::{Deserialize, Serialize};
use std::fmt;

/// Polarity of a MOS transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// First-order MOS model parameters of one polarity at one technology node.
///
/// These are the quantities the paper feeds into the per-component state
/// vector (`Vsat`, `Vth0`, `Vfb`, `µ0`, `Uc`), plus the derived transconductance
/// parameter and channel-length-modulation coefficient the simulator needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosModelParams {
    /// Zero-bias threshold voltage magnitude, volts.
    pub vth0: f64,
    /// Low-field carrier mobility, cm²/(V·s).
    pub mu0: f64,
    /// Saturation velocity, m/s.
    pub vsat: f64,
    /// Flat-band voltage, volts.
    pub vfb: f64,
    /// Mobility degradation coefficient, 1/V.
    pub uc: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Channel-length modulation coefficient for a 1 µm device, 1/V.
    /// The effective lambda scales as `lambda_per_um / L[µm]`.
    pub lambda_per_um: f64,
}

impl MosModelParams {
    /// Process transconductance parameter `k' = µ0 · Cox` in A/V².
    ///
    /// `mu0` is stored in cm²/(V·s) and converted to m²/(V·s) here.
    pub fn kp(&self) -> f64 {
        self.mu0 * 1e-4 * self.cox
    }

    /// The five model features used in the RL state vector, in the paper's
    /// order `(Vsat, Vth0, Vfb, µ0, Uc)`.
    pub fn state_features(&self) -> [f64; 5] {
        [self.vsat, self.vth0, self.vfb, self.mu0, self.uc]
    }
}

/// A CMOS technology node: device models plus legal sizing ranges.
///
/// The transfer experiments in the paper train at 180 nm and port to
/// 250/130/65/45 nm; [`TechnologyNode::all`] returns the same five nodes.
///
/// # Examples
///
/// ```
/// use gcnrl_circuit::TechnologyNode;
///
/// let n180 = TechnologyNode::tsmc180();
/// let n45 = TechnologyNode::n45();
/// assert!(n45.vdd < n180.vdd);
/// assert!(n45.l_min_um < n180.l_min_um);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    /// Human-readable name, e.g. `"180nm"`.
    pub name: String,
    /// Feature size in nanometres.
    pub feature_nm: f64,
    /// Nominal supply voltage, volts.
    pub vdd: f64,
    /// Minimum drawn gate length, µm.
    pub l_min_um: f64,
    /// Maximum drawn gate length, µm.
    pub l_max_um: f64,
    /// Minimum gate width, µm.
    pub w_min_um: f64,
    /// Maximum gate width, µm.
    pub w_max_um: f64,
    /// Manufacturing grid for W and L, µm.
    pub grid_um: f64,
    /// Maximum device multiplier.
    pub m_max: u32,
    /// NMOS model parameters.
    pub nmos: MosModelParams,
    /// PMOS model parameters.
    pub pmos: MosModelParams,
}

/// Permittivity of SiO₂ in F/m.
const EPS_OX: f64 = 3.45e-11;

fn cox_from_tox_nm(tox_nm: f64) -> f64 {
    EPS_OX / (tox_nm * 1e-9)
}

impl TechnologyNode {
    /// Model parameters for the given polarity.
    pub fn mos(&self, polarity: MosPolarity) -> &MosModelParams {
        match polarity {
            MosPolarity::Nmos => &self.nmos,
            MosPolarity::Pmos => &self.pmos,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &str,
        feature_nm: f64,
        vdd: f64,
        tox_nm: f64,
        vthn: f64,
        vthp: f64,
        mun: f64,
        mup: f64,
    ) -> Self {
        let cox = cox_from_tox_nm(tox_nm);
        let l_min = feature_nm / 1000.0;
        TechnologyNode {
            name: name.to_owned(),
            feature_nm,
            vdd,
            l_min_um: l_min,
            l_max_um: (l_min * 20.0).min(4.0),
            w_min_um: (l_min * 4.0).max(0.2),
            w_max_um: 200.0,
            grid_um: 0.005,
            m_max: 32,
            nmos: MosModelParams {
                vth0: vthn,
                mu0: mun,
                vsat: 1.0e5,
                vfb: -0.9,
                uc: 0.06,
                cox,
                lambda_per_um: 0.08,
            },
            pmos: MosModelParams {
                vth0: vthp,
                mu0: mup,
                vsat: 8.0e4,
                vfb: 0.8,
                uc: 0.09,
                cox,
                lambda_per_um: 0.11,
            },
        }
    }

    /// The 250 nm node.
    pub fn n250() -> Self {
        Self::build("250nm", 250.0, 2.5, 5.6, 0.55, 0.60, 430.0, 140.0)
    }

    /// The commercial 180 nm node the paper designs and trains in.
    pub fn tsmc180() -> Self {
        Self::build("180nm", 180.0, 1.8, 4.1, 0.48, 0.50, 400.0, 125.0)
    }

    /// The 130 nm node.
    pub fn n130() -> Self {
        Self::build("130nm", 130.0, 1.3, 2.3, 0.38, 0.42, 360.0, 110.0)
    }

    /// The 65 nm node.
    pub fn n65() -> Self {
        Self::build("65nm", 65.0, 1.2, 1.8, 0.33, 0.36, 330.0, 100.0)
    }

    /// The 45 nm node.
    pub fn n45() -> Self {
        Self::build("45nm", 45.0, 1.1, 1.4, 0.30, 0.33, 300.0, 90.0)
    }

    /// All five nodes used in the paper's transfer study, largest first.
    pub fn all() -> Vec<TechnologyNode> {
        vec![
            Self::n250(),
            Self::tsmc180(),
            Self::n130(),
            Self::n65(),
            Self::n45(),
        ]
    }

    /// Looks a node up by name (`"45nm"`, `"180nm"`, ...).
    pub fn by_name(name: &str) -> Option<TechnologyNode> {
        Self::all().into_iter().find(|n| n.name == name)
    }
}

impl fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (VDD={}V)", self.name, self.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_nodes_exist_with_unique_names() {
        let all = TechnologyNode::all();
        assert_eq!(all.len(), 5);
        let names: std::collections::HashSet<_> = all.iter().map(|n| n.name.clone()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn scaling_trends_hold() {
        let all = TechnologyNode::all();
        // Sorted largest node first: vdd, vth and l_min must be non-increasing.
        for pair in all.windows(2) {
            assert!(pair[0].vdd >= pair[1].vdd);
            assert!(pair[0].l_min_um > pair[1].l_min_um);
            assert!(pair[0].nmos.vth0 >= pair[1].nmos.vth0);
            // Cox increases as oxide thins.
            assert!(pair[0].nmos.cox < pair[1].nmos.cox);
        }
    }

    #[test]
    fn kp_is_reasonable() {
        let n = TechnologyNode::tsmc180();
        let kpn = n.nmos.kp();
        // Typical 180nm k'n is a few hundred µA/V².
        assert!(kpn > 1e-4 && kpn < 1e-3, "kpn = {kpn}");
        assert!(n.pmos.kp() < kpn);
    }

    #[test]
    fn lookup_by_name() {
        assert!(TechnologyNode::by_name("65nm").is_some());
        assert!(TechnologyNode::by_name("7nm").is_none());
    }

    #[test]
    fn state_features_order_matches_paper() {
        let n = TechnologyNode::tsmc180();
        let f = n.nmos.state_features();
        assert_eq!(f[0], n.nmos.vsat);
        assert_eq!(f[1], n.nmos.vth0);
        assert_eq!(f[2], n.nmos.vfb);
        assert_eq!(f[3], n.nmos.mu0);
        assert_eq!(f[4], n.nmos.uc);
    }

    #[test]
    fn mos_accessor_selects_polarity() {
        let n = TechnologyNode::n65();
        assert_eq!(n.mos(MosPolarity::Nmos).vth0, n.nmos.vth0);
        assert_eq!(n.mos(MosPolarity::Pmos).vth0, n.pmos.vth0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(TechnologyNode::n45().to_string().contains("45nm"));
    }
}
