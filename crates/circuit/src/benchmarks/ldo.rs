use crate::{Circuit, CircuitBuilder};

/// Low-dropout regulator ("LDO", Fig. 6d).
///
/// A classic analog LDO: a five-transistor error amplifier compares the
/// feedback voltage against `VREF` and drives a large PMOS pass device; a
/// resistive divider `R1`/`R2` closes the loop and `CL` is the output
/// capacitor at the regulated node:
///
/// * `T1`/`T2` — error-amplifier NMOS input pair (`VREF` vs feedback).
/// * `T3`/`T4` — PMOS mirror load.
/// * `T5` — tail current source, `T7` — its diode-connected bias reference.
/// * `T6` — second-stage/buffer device driving the pass gate.
/// * `T8` — the PMOS pass transistor.
/// * `R1`, `R2` — feedback divider; `CL` — output capacitor.
pub fn low_dropout_regulator() -> Circuit {
    let mut b = CircuitBuilder::new("low_dropout_regulator");
    b.supply("vdd");
    b.supply("gnd");
    b.net("vref");
    b.net("vfb");
    b.net("tail");
    b.net("x1");
    b.net("vgate");
    b.net("vout");
    b.net("vbias");

    b.nmos("T1", "x1", "vref", "tail").expect("valid net");
    b.nmos("T2", "vgate", "vfb", "tail").expect("valid net");
    b.pmos("T3", "x1", "x1", "vdd").expect("valid net");
    b.pmos("T4", "vgate", "x1", "vdd").expect("valid net");
    b.nmos("T5", "tail", "vbias", "gnd").expect("valid net");
    b.nmos("T6", "vgate", "vbias", "gnd").expect("valid net");
    b.nmos("T7", "vbias", "vbias", "gnd").expect("valid net");
    b.pmos("T8", "vout", "vgate", "vdd").expect("valid net");
    b.resistor("R1", "vout", "vfb").expect("valid net");
    b.resistor("R2", "vfb", "gnd").expect("valid net");
    b.capacitor("CL", "vout", "gnd").expect("valid net");

    b.matched("input_pair", &["T1", "T2"])
        .expect("members exist");
    b.matched("mirror_load", &["T3", "T4"])
        .expect("members exist");
    b.matched("bias_legs_L", &["T5", "T6", "T7"])
        .expect("members exist");
    b.build().expect("low_dropout_regulator is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComponentKind;

    #[test]
    fn component_inventory() {
        let c = low_dropout_regulator();
        assert_eq!(c.num_transistors(), 8);
        assert_eq!(c.num_components(), 11);
        assert_eq!(c.component_by_name("T8").unwrap().kind, ComponentKind::Pmos);
    }

    #[test]
    fn feedback_divider_closes_the_loop() {
        let c = low_dropout_regulator();
        let r1 = c.component_by_name("R1").unwrap();
        let nets: Vec<&str> = r1
            .terminals
            .iter()
            .map(|t| c.nets()[t.index()].name.as_str())
            .collect();
        assert!(nets.contains(&"vout") && nets.contains(&"vfb"));
    }

    #[test]
    fn graph_is_connected() {
        let g = low_dropout_regulator().topology_graph();
        assert!(g.is_connected());
        assert!(g.diameter() <= 7);
    }
}
