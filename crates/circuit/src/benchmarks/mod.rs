//! The four benchmark circuits evaluated in the paper (Fig. 6).
//!
//! Each function returns a fully wired [`Circuit`](crate::Circuit) with the
//! matching groups a designer would enforce.  The topologies follow the
//! paper's schematics at the level of stages and device roles; see DESIGN.md
//! for the (documented) simplifications relative to the original contest
//! designs, which are not public.

mod ldo;
mod three_tia;
mod two_tia;
mod two_volt;

pub use ldo::low_dropout_regulator;
pub use three_tia::three_stage_tia;
pub use two_tia::two_stage_tia;
pub use two_volt::two_stage_voltage_amp;

use crate::Circuit;

/// Identifier of one of the paper's four benchmark circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Benchmark {
    /// Two-stage transimpedance amplifier ("Two-TIA").
    TwoStageTia,
    /// Two-stage voltage amplifier ("Two-Volt").
    TwoStageVoltageAmp,
    /// Three-stage transimpedance amplifier ("Three-TIA").
    ThreeStageTia,
    /// Low-dropout regulator ("LDO").
    Ldo,
}

impl Benchmark {
    /// All four benchmarks in the order the paper's tables list them.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::TwoStageTia,
        Benchmark::TwoStageVoltageAmp,
        Benchmark::ThreeStageTia,
        Benchmark::Ldo,
    ];

    /// The short name used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            Benchmark::TwoStageTia => "Two-TIA",
            Benchmark::TwoStageVoltageAmp => "Two-Volt",
            Benchmark::ThreeStageTia => "Three-TIA",
            Benchmark::Ldo => "LDO",
        }
    }

    /// Builds the benchmark netlist.
    pub fn circuit(self) -> Circuit {
        match self {
            Benchmark::TwoStageTia => two_stage_tia(),
            Benchmark::TwoStageVoltageAmp => two_stage_voltage_amp(),
            Benchmark::ThreeStageTia => three_stage_tia(),
            Benchmark::Ldo => low_dropout_regulator(),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_are_connected() {
        for b in Benchmark::ALL {
            let c = b.circuit();
            assert!(c.num_components() >= 6, "{b} too small");
            let g = c.topology_graph();
            assert!(g.is_connected(), "{b} topology graph must be connected");
            // Seven GCN layers must give a global receptive field (paper Sec. III-D).
            assert!(
                g.diameter() <= 10,
                "{b} diameter {} exceeds 10",
                g.diameter()
            );
        }
    }

    #[test]
    fn paper_names_match_tables() {
        assert_eq!(Benchmark::TwoStageTia.paper_name(), "Two-TIA");
        assert_eq!(Benchmark::Ldo.to_string(), "LDO");
    }

    #[test]
    fn three_tia_is_larger_than_two_tia() {
        assert!(
            three_stage_tia().num_transistors() > two_stage_tia().num_transistors(),
            "the three-stage amplifier must have more devices"
        );
    }
}
