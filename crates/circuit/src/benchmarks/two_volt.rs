use crate::{Circuit, CircuitBuilder};

/// Two-stage Miller-compensated voltage amplifier ("Two-Volt", Fig. 6b).
///
/// The paper's amplifier is a fully-differential two-stage design used in a
/// capacitive closed-loop configuration (gain set by `CS/CF`) with Miller
/// compensation.  We model one differential half plus the shared bias chain:
///
/// * `TB1`/`TB2` — bias mirror (diode reference and tail current source).
/// * `T1`/`T2` — NMOS input differential pair.
/// * `T3`/`T4` — PMOS current-mirror load of the first stage.
/// * `T5` — PMOS common-source second stage, `T6` — its NMOS current-source load.
/// * `CC` — Miller compensation capacitor, `CL` — output load.
/// * `CS`/`CF` — the closed-loop sampling/feedback capacitors that set the
///   PVT-stable gain the paper mentions.
pub fn two_stage_voltage_amp() -> Circuit {
    let mut b = CircuitBuilder::new("two_stage_voltage_amp");
    b.supply("vdd");
    b.supply("gnd");
    b.net("vin_p");
    b.net("vin_n");
    b.net("tail");
    b.net("x1"); // first-stage mirror node
    b.net("vo1"); // first-stage output
    b.net("vout");
    b.net("vbias");

    b.nmos("TB1", "vbias", "vbias", "gnd").expect("valid net");
    b.nmos("TB2", "tail", "vbias", "gnd").expect("valid net");
    b.nmos("T1", "x1", "vin_p", "tail").expect("valid net");
    b.nmos("T2", "vo1", "vin_n", "tail").expect("valid net");
    b.pmos("T3", "x1", "x1", "vdd").expect("valid net");
    b.pmos("T4", "vo1", "x1", "vdd").expect("valid net");
    b.pmos("T5", "vout", "vo1", "vdd").expect("valid net");
    b.nmos("T6", "vout", "vbias", "gnd").expect("valid net");
    b.capacitor("CC", "vo1", "vout").expect("valid net");
    b.capacitor("CL", "vout", "gnd").expect("valid net");
    b.capacitor("CS", "vin_n", "vin_p").expect("valid net");
    b.capacitor("CF", "vin_n", "vout").expect("valid net");

    b.matched("input_pair", &["T1", "T2"])
        .expect("members exist");
    b.matched("load_mirror", &["T3", "T4"])
        .expect("members exist");
    b.matched("bias_mirror_L", &["TB1", "TB2"])
        .expect("members exist");
    b.build().expect("two_stage_voltage_amp is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_inventory() {
        let c = two_stage_voltage_amp();
        assert_eq!(c.num_transistors(), 8);
        assert_eq!(c.num_components(), 12);
        assert_eq!(c.matching_groups().len(), 3);
    }

    #[test]
    fn miller_cap_bridges_the_two_stages() {
        let c = two_stage_voltage_amp();
        let cc = c.component_by_name("CC").unwrap();
        let nets: Vec<&str> = cc
            .terminals
            .iter()
            .map(|t| c.nets()[t.index()].name.as_str())
            .collect();
        assert!(nets.contains(&"vo1") && nets.contains(&"vout"));
    }

    #[test]
    fn graph_is_connected_with_small_diameter() {
        let g = two_stage_voltage_amp().topology_graph();
        assert!(g.is_connected());
        assert!(g.diameter() <= 7);
    }
}
