use crate::{Circuit, CircuitBuilder};

/// Three-stage transimpedance amplifier ("Three-TIA", Fig. 6c).
///
/// The paper's design converts a differential source current to a voltage
/// through three cascaded gain stages.  We model one signal path with three
/// current-mirror / common-source stages plus the bias chain, seventeen
/// transistors and the bias resistor `RB`, mirroring the component count of
/// the schematic:
///
/// * `T0` — tail/bias reference (diode-connected, biased through `RB`).
/// * Stage 1: `T1` (diode input), `T2` (mirror), `T7`/`T8` (PMOS mirror),
///   `T9` (NMOS diode load).
/// * Stage 2: `T3` (common source), `T10`/`T11` (PMOS mirror), `T12` (diode load).
/// * Stage 3: `T4` (common source), `T13`/`T14` (PMOS mirror), `T15` (diode load),
///   `T16` (output common-source stage), `T5`, `T6` (output bias legs).
pub fn three_stage_tia() -> Circuit {
    let mut b = CircuitBuilder::new("three_stage_tia");
    b.supply("vdd");
    b.supply("gnd");
    b.net("vbias");
    b.net("vin");
    b.net("s1"); // stage-1 mirror node
    b.net("o1"); // stage-1 output
    b.net("s2");
    b.net("o2");
    b.net("s3");
    b.net("o3");
    b.net("vout");

    // Bias chain.
    b.resistor("RB", "vdd", "vbias").expect("valid net");
    b.nmos("T0", "vbias", "vbias", "gnd").expect("valid net");

    // Stage 1: current input, diode + mirror, folded by a PMOS mirror.
    b.nmos("T1", "vin", "vin", "gnd").expect("valid net");
    b.nmos("T2", "s1", "vin", "gnd").expect("valid net");
    b.pmos("T7", "s1", "s1", "vdd").expect("valid net");
    b.pmos("T8", "o1", "s1", "vdd").expect("valid net");
    b.nmos("T9", "o1", "o1", "gnd").expect("valid net");

    // Stage 2.
    b.nmos("T3", "s2", "o1", "gnd").expect("valid net");
    b.pmos("T10", "s2", "s2", "vdd").expect("valid net");
    b.pmos("T11", "o2", "s2", "vdd").expect("valid net");
    b.nmos("T12", "o2", "o2", "gnd").expect("valid net");

    // Stage 3.
    b.nmos("T4", "s3", "o2", "gnd").expect("valid net");
    b.pmos("T13", "s3", "s3", "vdd").expect("valid net");
    b.pmos("T14", "o3", "s3", "vdd").expect("valid net");
    b.nmos("T15", "o3", "o3", "gnd").expect("valid net");

    // Output stage and bias legs.
    b.nmos("T16", "vout", "o3", "gnd").expect("valid net");
    b.pmos("T5", "vout", "vbias", "vdd").expect("valid net");
    b.nmos("T6", "vout", "vbias", "gnd").expect("valid net");

    b.matched("stage1_mirror", &["T7", "T8"])
        .expect("members exist");
    b.matched("stage2_mirror", &["T10", "T11"])
        .expect("members exist");
    b.matched("stage3_mirror", &["T13", "T14"])
        .expect("members exist");
    b.matched("input_mirror_L", &["T1", "T2"])
        .expect("members exist");
    b.build().expect("three_stage_tia is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_inventory_matches_paper_scale() {
        let c = three_stage_tia();
        assert_eq!(c.num_transistors(), 17);
        assert_eq!(c.num_components(), 18); // + RB
    }

    #[test]
    fn has_three_cascaded_gain_stages() {
        let c = three_stage_tia();
        for name in ["T2", "T3", "T4", "T16"] {
            assert!(c.component_by_name(name).is_ok(), "missing {name}");
        }
    }

    #[test]
    fn graph_is_connected_with_bounded_diameter() {
        let g = three_stage_tia().topology_graph();
        assert!(g.is_connected());
        assert!(g.diameter() <= 10, "diameter {}", g.diameter());
    }
}
