use crate::{Circuit, CircuitBuilder};

/// Two-stage transimpedance amplifier ("Two-TIA", Fig. 6a of the paper).
///
/// Signal path:
///
/// * `T1` — diode-connected NMOS input device converting the input current at
///   `vin` into a gate voltage (the paper's "diode-connected input transistors").
/// * `T2` — NMOS mirror device (1 : A current gain) driving the first gain node `v1`.
/// * `T3`/`T4` — PMOS mirror folding the first-stage current onto `v2`.
/// * `T5` — diode-connected NMOS load of the folding node.
/// * `T6` — NMOS common-source output stage with resistive load `R6`.
/// * `RF` — shunt–shunt feedback resistor setting the closed-loop transimpedance.
/// * `CL` — load capacitor at `vout`.
///
/// Matching groups tie the mirror legs together the way a designer would.
pub fn two_stage_tia() -> Circuit {
    let mut b = CircuitBuilder::new("two_stage_tia");
    b.supply("vdd");
    b.supply("gnd");
    b.net("vin");
    b.net("v1");
    b.net("v2");
    b.net("vout");

    b.nmos("T1", "vin", "vin", "gnd").expect("valid net");
    b.nmos("T2", "v1", "vin", "gnd").expect("valid net");
    b.pmos("T3", "v1", "v1", "vdd").expect("valid net");
    b.pmos("T4", "v2", "v1", "vdd").expect("valid net");
    b.nmos("T5", "v2", "v2", "gnd").expect("valid net");
    b.nmos("T6", "vout", "v2", "gnd").expect("valid net");
    b.resistor("R6", "vdd", "vout").expect("valid net");
    b.resistor("RF", "vout", "vin").expect("valid net");
    b.capacitor("CL", "vout", "gnd").expect("valid net");

    // The input device and its mirror share L; the PMOS mirror legs match.
    b.matched("nmos_mirror_L", &["T1", "T2"])
        .expect("members exist");
    b.matched("pmos_mirror", &["T3", "T4"])
        .expect("members exist");
    b.build().expect("two_stage_tia is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComponentKind;

    #[test]
    fn component_inventory() {
        let c = two_stage_tia();
        assert_eq!(c.num_components(), 9);
        assert_eq!(c.num_transistors(), 6);
        assert_eq!(
            c.component_by_name("RF").unwrap().kind,
            ComponentKind::Resistor
        );
        assert_eq!(
            c.component_by_name("CL").unwrap().kind,
            ComponentKind::Capacitor
        );
    }

    #[test]
    fn feedback_resistor_connects_output_to_input() {
        let c = two_stage_tia();
        let rf = c.component_by_name("RF").unwrap();
        let nets: Vec<&str> = rf
            .terminals
            .iter()
            .map(|t| c.nets()[t.index()].name.as_str())
            .collect();
        assert!(nets.contains(&"vout") && nets.contains(&"vin"));
    }

    #[test]
    fn graph_connects_input_to_output_stage() {
        let c = two_stage_tia();
        let g = c.topology_graph();
        assert!(g.is_connected());
        // T1 (id 0) and T6 (id 5) must be within the GCN receptive field.
        assert!(g.diameter() <= 7);
    }
}
