use crate::component::{ComponentId, ComponentKind, ComponentParams, MosSizing};
use crate::netlist::Circuit;
use crate::technology::TechnologyNode;
use serde::{Deserialize, Serialize};

/// How a parameter interpolates between its bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamScale {
    /// Linear interpolation — used for W, L and M.
    Linear,
    /// Logarithmic interpolation — used for resistance and capacitance values,
    /// which span several decades.
    Log,
}

/// Legal range, scale, grid and integrality of one sizable parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamBounds {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    /// Interpolation scale between the bounds.
    pub scale: ParamScale,
    /// Manufacturing grid; values are rounded to an integer multiple of this.
    /// `None` means no grid restriction beyond the bounds.
    pub grid: Option<f64>,
    /// Whether the parameter is an integer (the MOS multiplier M).
    pub integer: bool,
}

impl ParamBounds {
    /// Maps a normalised action in `[-1, 1]` to a legal parameter value:
    /// clamping, scale mapping, grid rounding and integrality are applied in
    /// that order (the paper's "denormalise and refine" step 4).
    pub fn denormalize(&self, action: f64) -> f64 {
        let a = action.clamp(-1.0, 1.0);
        let unit = (a + 1.0) / 2.0;
        self.from_unit(unit)
    }

    /// Maps a unit value in `[0, 1]` to a legal parameter value.
    pub fn from_unit(&self, unit: f64) -> f64 {
        let u = unit.clamp(0.0, 1.0);
        let raw = match self.scale {
            ParamScale::Linear => self.lo + u * (self.hi - self.lo),
            ParamScale::Log => {
                let (llo, lhi) = (self.lo.ln(), self.hi.ln());
                (llo + u * (lhi - llo)).exp()
            }
        };
        self.refine(raw)
    }

    /// Maps a legal value back to a unit value in `[0, 1]`.
    pub fn to_unit(&self, value: f64) -> f64 {
        let v = value.clamp(self.lo, self.hi);
        match self.scale {
            ParamScale::Linear => (v - self.lo) / (self.hi - self.lo),
            ParamScale::Log => (v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln()),
        }
    }

    /// Clamps to the bounds, rounds to the grid, and enforces integrality.
    pub fn refine(&self, value: f64) -> f64 {
        let mut v = value.clamp(self.lo, self.hi);
        if let Some(grid) = self.grid {
            v = (v / grid).round() * grid;
            v = v.clamp(self.lo, self.hi);
        }
        if self.integer {
            v = v.round().max(self.lo.ceil());
        }
        v
    }

    /// Returns `true` if `value` lies within the bounds (after grid rounding
    /// it always will; this is used by tests and validation).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo - 1e-12 && value <= self.hi + 1e-12
    }
}

/// A concrete sizing of every component of one circuit.
///
/// Produced by [`DesignSpace::denormalize`] (from RL actions) or
/// [`DesignSpace::from_unit`] (from flat optimiser vectors) and consumed by the
/// performance evaluators in `gcnrl-sim`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamVector {
    params: Vec<ComponentParams>,
}

impl ParamVector {
    /// Creates a parameter vector from per-component parameters.
    pub fn new(params: Vec<ComponentParams>) -> Self {
        ParamVector { params }
    }

    /// Per-component parameters in component-id order.
    pub fn params(&self) -> &[ComponentParams] {
        &self.params
    }

    /// Parameters of one component.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the owning circuit.
    pub fn get(&self, id: ComponentId) -> &ComponentParams {
        &self.params[id.index()]
    }

    /// Number of components covered.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` if the vector covers no components.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Flattens to a single `Vec<f64>` in component order
    /// (`[W, L, M]` per transistor, `[R]` / `[C]` per passive).
    pub fn to_flat(&self) -> Vec<f64> {
        self.params.iter().flat_map(|p| p.to_vec()).collect()
    }
}

/// The per-component search space of one circuit at one technology node.
///
/// # Examples
///
/// ```
/// use gcnrl_circuit::{benchmarks, TechnologyNode};
///
/// let circuit = benchmarks::two_stage_tia();
/// let node = TechnologyNode::tsmc180();
/// let space = circuit.design_space(&node);
///
/// // All-zero actions land exactly in the middle of every range.
/// let actions: Vec<Vec<f64>> = space.action_sizes().iter().map(|n| vec![0.0; *n]).collect();
/// let sized = space.denormalize(&actions);
/// assert_eq!(sized.len(), circuit.num_components());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    kinds: Vec<ComponentKind>,
    bounds: Vec<Vec<ParamBounds>>,
}

impl DesignSpace {
    /// Builds the search space for `circuit` under technology `node`.
    pub fn for_circuit(circuit: &Circuit, node: &TechnologyNode) -> Self {
        let kinds: Vec<ComponentKind> = circuit.components().iter().map(|c| c.kind).collect();
        let bounds = kinds
            .iter()
            .map(|k| Self::bounds_for_kind(*k, node))
            .collect();
        DesignSpace { kinds, bounds }
    }

    fn bounds_for_kind(kind: ComponentKind, node: &TechnologyNode) -> Vec<ParamBounds> {
        match kind {
            ComponentKind::Nmos | ComponentKind::Pmos => vec![
                // W in µm
                ParamBounds {
                    lo: node.w_min_um,
                    hi: node.w_max_um,
                    scale: ParamScale::Linear,
                    grid: Some(node.grid_um),
                    integer: false,
                },
                // L in µm
                ParamBounds {
                    lo: node.l_min_um,
                    hi: node.l_max_um,
                    scale: ParamScale::Linear,
                    grid: Some(node.grid_um),
                    integer: false,
                },
                // M
                ParamBounds {
                    lo: 1.0,
                    hi: f64::from(node.m_max),
                    scale: ParamScale::Linear,
                    grid: None,
                    integer: true,
                },
            ],
            ComponentKind::Resistor => vec![ParamBounds {
                lo: 50.0,
                hi: 5.0e6,
                scale: ParamScale::Log,
                grid: None,
                integer: false,
            }],
            ComponentKind::Capacitor => vec![ParamBounds {
                lo: 50e-15,
                hi: 50e-12,
                scale: ParamScale::Log,
                grid: None,
                integer: false,
            }],
        }
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.kinds.len()
    }

    /// Total number of scalar parameters across all components.
    pub fn num_parameters(&self) -> usize {
        self.bounds.iter().map(|b| b.len()).sum()
    }

    /// Per-component action-vector sizes (3 for transistors, 1 for passives).
    pub fn action_sizes(&self) -> Vec<usize> {
        self.bounds.iter().map(|b| b.len()).collect()
    }

    /// Largest per-component action size (the agent's action-head width).
    pub fn max_action_size(&self) -> usize {
        self.action_sizes().into_iter().max().unwrap_or(0)
    }

    /// Bounds of one component's parameters.
    ///
    /// # Panics
    ///
    /// Panics if `component` is out of range.
    pub fn bounds(&self, component: usize) -> &[ParamBounds] {
        &self.bounds[component]
    }

    /// Kind of one component.
    ///
    /// # Panics
    ///
    /// Panics if `component` is out of range.
    pub fn kind(&self, component: usize) -> ComponentKind {
        self.kinds[component]
    }

    /// Converts per-component normalised actions (each entry in `[-1, 1]`)
    /// into a concrete, legal [`ParamVector`].
    ///
    /// Extra action entries beyond a component's parameter count are ignored,
    /// which lets a fixed-width action head drive mixed component kinds.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len()` differs from the number of components or an
    /// action vector is shorter than that component's parameter count.
    pub fn denormalize(&self, actions: &[Vec<f64>]) -> ParamVector {
        assert_eq!(
            actions.len(),
            self.num_components(),
            "one action vector per component is required"
        );
        let params = self
            .kinds
            .iter()
            .zip(&self.bounds)
            .zip(actions)
            .map(|((kind, bounds), action)| {
                assert!(
                    action.len() >= bounds.len(),
                    "action vector too short for component"
                );
                let vals: Vec<f64> = bounds
                    .iter()
                    .zip(action)
                    .map(|(b, a)| b.denormalize(*a))
                    .collect();
                Self::pack(*kind, &vals)
            })
            .collect();
        ParamVector::new(params)
    }

    /// Converts a flat unit vector (each entry in `[0, 1]`, length
    /// [`DesignSpace::num_parameters`]) into a legal [`ParamVector`].
    /// This is the interface the black-box baselines use.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len() != self.num_parameters()`.
    pub fn from_unit(&self, unit: &[f64]) -> ParamVector {
        assert_eq!(
            unit.len(),
            self.num_parameters(),
            "unit vector length mismatch"
        );
        let mut offset = 0;
        let params = self
            .kinds
            .iter()
            .zip(&self.bounds)
            .map(|(kind, bounds)| {
                let vals: Vec<f64> = bounds
                    .iter()
                    .enumerate()
                    .map(|(i, b)| b.from_unit(unit[offset + i]))
                    .collect();
                offset += bounds.len();
                Self::pack(*kind, &vals)
            })
            .collect();
        ParamVector::new(params)
    }

    /// Converts a [`ParamVector`] back to the flat unit representation.
    pub fn to_unit(&self, pv: &ParamVector) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for (bounds, params) in self.bounds.iter().zip(pv.params()) {
            for (b, v) in bounds.iter().zip(params.to_vec()) {
                out.push(b.to_unit(v));
            }
        }
        out
    }

    /// The mid-range sizing: every parameter at the middle of its range.
    pub fn nominal(&self) -> ParamVector {
        let actions: Vec<Vec<f64>> = self.bounds.iter().map(|b| vec![0.0; b.len()]).collect();
        self.denormalize(&actions)
    }

    /// Re-applies clamping, grid rounding and integrality to an existing
    /// parameter vector (used after matching-group harmonisation).
    pub fn refine(&self, pv: &ParamVector) -> ParamVector {
        let params = self
            .kinds
            .iter()
            .zip(&self.bounds)
            .zip(pv.params())
            .map(|((kind, bounds), p)| {
                let vals: Vec<f64> = bounds
                    .iter()
                    .zip(p.to_vec())
                    .map(|(b, v)| b.refine(v))
                    .collect();
                Self::pack(*kind, &vals)
            })
            .collect();
        ParamVector::new(params)
    }

    fn pack(kind: ComponentKind, vals: &[f64]) -> ComponentParams {
        match kind {
            ComponentKind::Nmos | ComponentKind::Pmos => ComponentParams::Mos(MosSizing::new(
                vals[0],
                vals[1],
                vals[2].round().max(1.0) as u32,
            )),
            ComponentKind::Resistor => ComponentParams::Resistance(vals[0]),
            ComponentKind::Capacitor => ComponentParams::Capacitance(vals[0]),
        }
    }

    /// Checks that every parameter of `pv` lies within its bounds.
    pub fn validate(&self, pv: &ParamVector) -> bool {
        self.bounds
            .iter()
            .zip(pv.params())
            .all(|(bounds, p)| bounds.iter().zip(p.to_vec()).all(|(b, v)| b.contains(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::technology::TechnologyNode;

    fn space() -> (DesignSpace, usize) {
        let c = benchmarks::two_stage_tia();
        let node = TechnologyNode::tsmc180();
        let n = c.num_components();
        (c.design_space(&node), n)
    }

    #[test]
    fn linear_denormalize_hits_bounds_and_midpoint() {
        let b = ParamBounds {
            lo: 1.0,
            hi: 3.0,
            scale: ParamScale::Linear,
            grid: None,
            integer: false,
        };
        assert_eq!(b.denormalize(-1.0), 1.0);
        assert_eq!(b.denormalize(1.0), 3.0);
        assert_eq!(b.denormalize(0.0), 2.0);
        // Out-of-range actions clamp.
        assert_eq!(b.denormalize(5.0), 3.0);
    }

    #[test]
    fn log_denormalize_is_geometric() {
        let b = ParamBounds {
            lo: 1.0,
            hi: 100.0,
            scale: ParamScale::Log,
            grid: None,
            integer: false,
        };
        assert!((b.denormalize(0.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn grid_rounding_and_integer() {
        let b = ParamBounds {
            lo: 0.18,
            hi: 2.0,
            scale: ParamScale::Linear,
            grid: Some(0.005),
            integer: false,
        };
        let v = b.refine(0.7512);
        assert!((v / 0.005 - (v / 0.005).round()).abs() < 1e-9);

        let m = ParamBounds {
            lo: 1.0,
            hi: 32.0,
            scale: ParamScale::Linear,
            grid: None,
            integer: true,
        };
        assert_eq!(m.refine(3.7), 4.0);
        assert_eq!(m.refine(0.2), 1.0);
    }

    #[test]
    fn unit_round_trip_stays_close() {
        let b = ParamBounds {
            lo: 50.0,
            hi: 5e6,
            scale: ParamScale::Log,
            grid: None,
            integer: false,
        };
        let v = b.from_unit(0.3);
        let u = b.to_unit(v);
        assert!((u - 0.3).abs() < 1e-9);
    }

    #[test]
    fn design_space_shapes_match_circuit() {
        let (space, n) = space();
        assert_eq!(space.num_components(), n);
        assert_eq!(space.max_action_size(), 3);
        assert_eq!(
            space.num_parameters(),
            space.action_sizes().iter().sum::<usize>()
        );
    }

    #[test]
    fn denormalize_respects_bounds_for_extreme_actions() {
        let (space, _) = space();
        for extreme in [-1.0, 1.0, -3.0, 3.0] {
            let actions: Vec<Vec<f64>> = space
                .action_sizes()
                .iter()
                .map(|n| vec![extreme; *n])
                .collect();
            let pv = space.denormalize(&actions);
            assert!(space.validate(&pv));
        }
    }

    #[test]
    fn from_unit_and_to_unit_round_trip() {
        let (space, _) = space();
        let unit: Vec<f64> = (0..space.num_parameters())
            .map(|i| (i as f64 * 0.37).fract())
            .collect();
        let pv = space.from_unit(&unit);
        assert!(space.validate(&pv));
        let back = space.to_unit(&pv);
        assert_eq!(back.len(), unit.len());
        // M rounding and grid snapping may move values slightly; all must stay in [0,1].
        assert!(back.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn nominal_is_valid_and_refine_is_idempotent() {
        let (space, _) = space();
        let nom = space.nominal();
        assert!(space.validate(&nom));
        let refined = space.refine(&nom);
        assert_eq!(refined, space.refine(&refined));
    }
}
