use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a component inside one [`Circuit`](crate::Circuit).
///
/// Indices are dense: the `k`-th component added to a circuit has id `k`,
/// which is also its vertex index in the [`TopologyGraph`](crate::TopologyGraph)
/// and its slot in the RL state/action tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(pub usize);

impl ComponentId {
    /// The dense index of this component.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The kind of a sizable component.
///
/// These are the four vertex types the paper's state vector distinguishes with
/// its one-hot type encoding (NMOS, PMOS, resistor, capacitor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// N-channel MOSFET.
    Nmos,
    /// P-channel MOSFET.
    Pmos,
    /// Resistor.
    Resistor,
    /// Capacitor.
    Capacitor,
}

impl ComponentKind {
    /// All component kinds in the canonical order used for one-hot encoding.
    pub const ALL: [ComponentKind; 4] = [
        ComponentKind::Nmos,
        ComponentKind::Pmos,
        ComponentKind::Resistor,
        ComponentKind::Capacitor,
    ];

    /// Index of this kind in [`ComponentKind::ALL`], used for one-hot encoding.
    pub fn type_index(self) -> usize {
        match self {
            ComponentKind::Nmos => 0,
            ComponentKind::Pmos => 1,
            ComponentKind::Resistor => 2,
            ComponentKind::Capacitor => 3,
        }
    }

    /// Number of sizable parameters this kind of component exposes to the agent.
    ///
    /// Transistors expose `(W, L, M)`; resistors and capacitors expose their value.
    pub fn num_parameters(self) -> usize {
        match self {
            ComponentKind::Nmos | ComponentKind::Pmos => 3,
            ComponentKind::Resistor | ComponentKind::Capacitor => 1,
        }
    }

    /// Returns `true` for NMOS and PMOS transistors.
    pub fn is_transistor(self) -> bool {
        matches!(self, ComponentKind::Nmos | ComponentKind::Pmos)
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Nmos => "NMOS",
            ComponentKind::Pmos => "PMOS",
            ComponentKind::Resistor => "R",
            ComponentKind::Capacitor => "C",
        };
        f.write_str(s)
    }
}

/// Width/length/multiplier sizing of one MOS transistor.
///
/// Dimensions are in micrometres; `m` is the number of parallel fingers
/// (the paper's "multiplexer" parameter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosSizing {
    /// Gate width in µm.
    pub w_um: f64,
    /// Gate length in µm.
    pub l_um: f64,
    /// Parallel-device multiplier (≥ 1).
    pub m: u32,
}

impl MosSizing {
    /// Creates a sizing, clamping `m` to at least 1.
    pub fn new(w_um: f64, l_um: f64, m: u32) -> Self {
        MosSizing {
            w_um,
            l_um,
            m: m.max(1),
        }
    }

    /// Effective width `W * M` in µm.
    pub fn effective_width_um(&self) -> f64 {
        self.w_um * f64::from(self.m)
    }

    /// Aspect ratio `W * M / L`.
    pub fn aspect_ratio(&self) -> f64 {
        self.effective_width_um() / self.l_um
    }
}

/// The concrete sized parameters of one component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComponentParams {
    /// Transistor sizing.
    Mos(MosSizing),
    /// Resistance in ohms.
    Resistance(f64),
    /// Capacitance in farads.
    Capacitance(f64),
}

impl ComponentParams {
    /// Flattens the parameters into the canonical per-component vector order.
    ///
    /// Transistors produce `[W, L, M]`; resistors `[R]`; capacitors `[C]`.
    pub fn to_vec(&self) -> Vec<f64> {
        match self {
            ComponentParams::Mos(s) => vec![s.w_um, s.l_um, f64::from(s.m)],
            ComponentParams::Resistance(r) => vec![*r],
            ComponentParams::Capacitance(c) => vec![*c],
        }
    }

    /// Returns the MOS sizing if this is a transistor.
    pub fn as_mos(&self) -> Option<MosSizing> {
        match self {
            ComponentParams::Mos(s) => Some(*s),
            _ => None,
        }
    }

    /// Returns the resistance in ohms if this is a resistor.
    pub fn as_resistance(&self) -> Option<f64> {
        match self {
            ComponentParams::Resistance(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the capacitance in farads if this is a capacitor.
    pub fn as_capacitance(&self) -> Option<f64> {
        match self {
            ComponentParams::Capacitance(c) => Some(*c),
            _ => None,
        }
    }
}

/// One sizable component (graph vertex) of a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Unique dense id within the owning circuit.
    pub id: ComponentId,
    /// Designator, e.g. `"T1"`, `"RF"`, `"CL"`.
    pub name: String,
    /// Component kind.
    pub kind: ComponentKind,
    /// Nets attached to the component terminals, in terminal order
    /// (drain/gate/source for MOS; the two ends for R and C).
    pub terminals: Vec<crate::NetId>,
}

impl Component {
    /// Number of sizable parameters of this component.
    pub fn num_parameters(&self) -> usize {
        self.kind.num_parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_unique_and_dense() {
        let mut seen = [false; 4];
        for kind in ComponentKind::ALL {
            let i = kind.type_index();
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn parameter_counts() {
        assert_eq!(ComponentKind::Nmos.num_parameters(), 3);
        assert_eq!(ComponentKind::Pmos.num_parameters(), 3);
        assert_eq!(ComponentKind::Resistor.num_parameters(), 1);
        assert_eq!(ComponentKind::Capacitor.num_parameters(), 1);
        assert!(ComponentKind::Nmos.is_transistor());
        assert!(!ComponentKind::Capacitor.is_transistor());
    }

    #[test]
    fn mos_sizing_effective_width() {
        let s = MosSizing::new(2.0, 0.18, 4);
        assert_eq!(s.effective_width_um(), 8.0);
        assert!((s.aspect_ratio() - 8.0 / 0.18).abs() < 1e-12);
        // m clamped to 1
        assert_eq!(MosSizing::new(1.0, 1.0, 0).m, 1);
    }

    #[test]
    fn params_round_trip_to_vec() {
        let p = ComponentParams::Mos(MosSizing::new(1.5, 0.2, 2));
        assert_eq!(p.to_vec(), vec![1.5, 0.2, 2.0]);
        assert!(p.as_mos().is_some());
        assert!(p.as_resistance().is_none());

        let r = ComponentParams::Resistance(1e3);
        assert_eq!(r.to_vec(), vec![1e3]);
        assert_eq!(r.as_resistance(), Some(1e3));

        let c = ComponentParams::Capacitance(1e-12);
        assert_eq!(c.as_capacitance(), Some(1e-12));
    }

    #[test]
    fn display_impls() {
        assert_eq!(ComponentId(3).to_string(), "c3");
        assert_eq!(ComponentKind::Pmos.to_string(), "PMOS");
    }
}
