use crate::component::{Component, ComponentId, ComponentKind};
use crate::design_space::DesignSpace;
use crate::graph::TopologyGraph;
use crate::refine::MatchingGroup;
use crate::technology::TechnologyNode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net (wire) inside one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub usize);

impl NetId {
    /// The dense index of this net.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A net (electrical node / wire) of the circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Unique dense id within the owning circuit.
    pub id: NetId,
    /// Net name, e.g. `"vout"`, `"vdd"`.
    pub name: String,
    /// Whether the net is a supply or ground rail.  Supply rails are excluded
    /// from the topology graph so that the graph reflects signal connectivity
    /// rather than the (almost complete) power-distribution connectivity.
    pub is_supply: bool,
}

/// Errors arising while building or querying a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A component referenced a net name that was never declared.
    UnknownNet {
        /// The missing net name.
        net: String,
    },
    /// Two components were given the same designator.
    DuplicateComponent {
        /// The repeated designator.
        name: String,
    },
    /// A lookup by name failed.
    UnknownComponent {
        /// The missing designator.
        name: String,
    },
    /// A matching group referenced components of different kinds.
    MixedMatchingGroup {
        /// The offending group label.
        group: String,
    },
    /// The circuit has no components.
    Empty,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNet { net } => write!(f, "unknown net `{net}`"),
            CircuitError::DuplicateComponent { name } => {
                write!(f, "duplicate component designator `{name}`")
            }
            CircuitError::UnknownComponent { name } => {
                write!(f, "unknown component `{name}`")
            }
            CircuitError::MixedMatchingGroup { group } => {
                write!(f, "matching group `{group}` mixes component kinds")
            }
            CircuitError::Empty => write!(f, "circuit has no components"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A fixed analog circuit topology whose component sizes are to be optimised.
///
/// A `Circuit` owns its components (graph vertices), nets (wires), and the
/// matching groups that the refinement step enforces.  It does not store
/// sizes — those live in a [`ParamVector`](crate::ParamVector) so that many
/// candidate sizings of the same topology can coexist.
///
/// # Examples
///
/// ```
/// use gcnrl_circuit::{CircuitBuilder, ComponentKind};
///
/// # fn main() -> Result<(), gcnrl_circuit::CircuitError> {
/// let mut b = CircuitBuilder::new("common_source");
/// b.supply("vdd");
/// b.net("vin");
/// b.net("vout");
/// b.net("gnd_ref");
/// b.nmos("M1", "vout", "vin", "gnd_ref")?;
/// b.resistor("RL", "vdd", "vout")?;
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_components(), 2);
/// assert_eq!(circuit.topology_graph().degree(0), 1); // M1 - RL share vout
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    components: Vec<Component>,
    nets: Vec<Net>,
    matching_groups: Vec<MatchingGroup>,
    by_name: HashMap<String, ComponentId>,
}

impl Circuit {
    /// Circuit name, e.g. `"two_stage_tia"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sizable components (graph vertices).
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// All components in id order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All nets in id order.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The matching groups enforced by refinement.
    pub fn matching_groups(&self) -> &[MatchingGroup] {
        &self.matching_groups
    }

    /// Looks up a component by designator.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] if no component has that name.
    pub fn component_by_name(&self, name: &str) -> Result<&Component, CircuitError> {
        self.by_name
            .get(name)
            .map(|id| &self.components[id.index()])
            .ok_or_else(|| CircuitError::UnknownComponent {
                name: name.to_owned(),
            })
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// Total number of sizable parameters across all components.
    pub fn num_parameters(&self) -> usize {
        self.components.iter().map(|c| c.num_parameters()).sum()
    }

    /// Builds the component topology graph (vertices = components, edges =
    /// shared non-supply nets), as consumed by the GCN layers.
    pub fn topology_graph(&self) -> TopologyGraph {
        TopologyGraph::from_circuit(self)
    }

    /// Builds the per-component search space for a given technology node.
    pub fn design_space(&self, node: &TechnologyNode) -> DesignSpace {
        DesignSpace::for_circuit(self, node)
    }

    /// Number of transistors in the circuit.
    pub fn num_transistors(&self) -> usize {
        self.components
            .iter()
            .filter(|c| c.kind.is_transistor())
            .count()
    }
}

/// Incremental builder for a [`Circuit`].
///
/// Nets must be declared (via [`CircuitBuilder::net`] or
/// [`CircuitBuilder::supply`]) before components referencing them are added;
/// this catches typos in hand-written benchmark netlists at build time.
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    components: Vec<Component>,
    nets: Vec<Net>,
    matching_groups: Vec<MatchingGroup>,
    net_by_name: HashMap<String, NetId>,
    by_name: HashMap<String, ComponentId>,
}

impl CircuitBuilder {
    /// Starts a new empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            components: Vec::new(),
            nets: Vec::new(),
            matching_groups: Vec::new(),
            net_by_name: HashMap::new(),
            by_name: HashMap::new(),
        }
    }

    /// Declares a signal net and returns its id.  Re-declaring a net returns
    /// the existing id.
    pub fn net(&mut self, name: &str) -> NetId {
        self.add_net(name, false)
    }

    /// Declares a supply/ground net and returns its id.
    pub fn supply(&mut self, name: &str) -> NetId {
        self.add_net(name, true)
    }

    fn add_net(&mut self, name: &str, is_supply: bool) -> NetId {
        if let Some(id) = self.net_by_name.get(name) {
            return *id;
        }
        let id = NetId(self.nets.len());
        self.nets.push(Net {
            id,
            name: name.to_owned(),
            is_supply,
        });
        self.net_by_name.insert(name.to_owned(), id);
        id
    }

    fn resolve(&self, net: &str) -> Result<NetId, CircuitError> {
        self.net_by_name
            .get(net)
            .copied()
            .ok_or_else(|| CircuitError::UnknownNet {
                net: net.to_owned(),
            })
    }

    fn add_component(
        &mut self,
        name: &str,
        kind: ComponentKind,
        terminals: Vec<NetId>,
    ) -> Result<ComponentId, CircuitError> {
        if self.by_name.contains_key(name) {
            return Err(CircuitError::DuplicateComponent {
                name: name.to_owned(),
            });
        }
        let id = ComponentId(self.components.len());
        self.components.push(Component {
            id,
            name: name.to_owned(),
            kind,
            terminals,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Adds an NMOS transistor with terminals `(drain, gate, source)`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNet`] for undeclared nets or
    /// [`CircuitError::DuplicateComponent`] for repeated designators.
    pub fn nmos(
        &mut self,
        name: &str,
        drain: &str,
        gate: &str,
        source: &str,
    ) -> Result<ComponentId, CircuitError> {
        let t = vec![
            self.resolve(drain)?,
            self.resolve(gate)?,
            self.resolve(source)?,
        ];
        self.add_component(name, ComponentKind::Nmos, t)
    }

    /// Adds a PMOS transistor with terminals `(drain, gate, source)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::nmos`].
    pub fn pmos(
        &mut self,
        name: &str,
        drain: &str,
        gate: &str,
        source: &str,
    ) -> Result<ComponentId, CircuitError> {
        let t = vec![
            self.resolve(drain)?,
            self.resolve(gate)?,
            self.resolve(source)?,
        ];
        self.add_component(name, ComponentKind::Pmos, t)
    }

    /// Adds a resistor between nets `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::nmos`].
    pub fn resistor(&mut self, name: &str, a: &str, b: &str) -> Result<ComponentId, CircuitError> {
        let t = vec![self.resolve(a)?, self.resolve(b)?];
        self.add_component(name, ComponentKind::Resistor, t)
    }

    /// Adds a capacitor between nets `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitBuilder::nmos`].
    pub fn capacitor(&mut self, name: &str, a: &str, b: &str) -> Result<ComponentId, CircuitError> {
        let t = vec![self.resolve(a)?, self.resolve(b)?];
        self.add_component(name, ComponentKind::Capacitor, t)
    }

    /// Declares that a set of components must stay identically sized
    /// (differential pairs, current-mirror legs, ...).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownComponent`] if a designator is unknown or
    /// [`CircuitError::MixedMatchingGroup`] if the members are not all of the
    /// same kind.
    pub fn matched(&mut self, label: &str, members: &[&str]) -> Result<(), CircuitError> {
        let mut ids = Vec::with_capacity(members.len());
        let mut kind: Option<ComponentKind> = None;
        for m in members {
            let id =
                self.by_name
                    .get(*m)
                    .copied()
                    .ok_or_else(|| CircuitError::UnknownComponent {
                        name: (*m).to_owned(),
                    })?;
            let k = self.components[id.index()].kind;
            if let Some(existing) = kind {
                if existing != k {
                    return Err(CircuitError::MixedMatchingGroup {
                        group: label.to_owned(),
                    });
                }
            }
            kind = Some(k);
            ids.push(id);
        }
        self.matching_groups.push(MatchingGroup {
            label: label.to_owned(),
            members: ids,
        });
        Ok(())
    }

    /// Finalises the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Empty`] if no components were added.
    pub fn build(self) -> Result<Circuit, CircuitError> {
        if self.components.is_empty() {
            return Err(CircuitError::Empty);
        }
        Ok(Circuit {
            name: self.name,
            components: self.components,
            nets: self.nets,
            matching_groups: self.matching_groups,
            by_name: self.by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Circuit {
        let mut b = CircuitBuilder::new("test");
        b.supply("vdd");
        b.net("in");
        b.net("out");
        b.net("gnd");
        b.nmos("M1", "out", "in", "gnd").unwrap();
        b.pmos("M2", "out", "in", "vdd").unwrap();
        b.resistor("R1", "out", "gnd").unwrap();
        b.capacitor("C1", "out", "gnd").unwrap();
        b.matched("inv", &["M1", "M2"]).unwrap_err(); // mixed kinds rejected
        b.matched("dup", &["M1"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_dense_ids() {
        let c = simple();
        assert_eq!(c.num_components(), 4);
        for (i, comp) in c.components().iter().enumerate() {
            assert_eq!(comp.id.index(), i);
        }
        assert_eq!(c.num_nets(), 4);
        assert_eq!(c.num_transistors(), 2);
    }

    #[test]
    fn unknown_net_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.net("a");
        assert!(matches!(
            b.nmos("M1", "a", "a", "missing"),
            Err(CircuitError::UnknownNet { .. })
        ));
    }

    #[test]
    fn duplicate_component_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.net("a");
        b.net("b");
        b.resistor("R1", "a", "b").unwrap();
        assert!(matches!(
            b.resistor("R1", "a", "b"),
            Err(CircuitError::DuplicateComponent { .. })
        ));
    }

    #[test]
    fn empty_circuit_rejected() {
        let b = CircuitBuilder::new("empty");
        assert!(matches!(b.build(), Err(CircuitError::Empty)));
    }

    #[test]
    fn lookup_by_name() {
        let c = simple();
        assert_eq!(
            c.component_by_name("R1").unwrap().kind,
            ComponentKind::Resistor
        );
        assert!(c.component_by_name("nope").is_err());
    }

    #[test]
    fn num_parameters_counts_by_kind() {
        let c = simple();
        // two transistors (3 each) + R + C (1 each)
        assert_eq!(c.num_parameters(), 8);
    }

    #[test]
    fn redeclaring_net_returns_same_id() {
        let mut b = CircuitBuilder::new("t");
        let a = b.net("x");
        let bb = b.net("x");
        assert_eq!(a, bb);
    }

    #[test]
    fn error_display() {
        let e = CircuitError::UnknownNet { net: "foo".into() };
        assert!(e.to_string().contains("foo"));
    }
}
