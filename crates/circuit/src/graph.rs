use crate::netlist::Circuit;
use gcnrl_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The component graph of a circuit, in the form consumed by the GCN agent.
///
/// Vertices are sizable components; an undirected edge connects two components
/// whenever they share a non-supply net (a signal wire).  The paper's Eq. 4
/// propagation rule uses the symmetrically normalised adjacency with self
/// loops, `D̃^-1/2 (A + I) D̃^-1/2`, which [`TopologyGraph::normalized_adjacency`]
/// precomputes once per circuit.
///
/// # Examples
///
/// ```
/// use gcnrl_circuit::benchmarks;
///
/// let circuit = benchmarks::two_stage_tia();
/// let graph = circuit.topology_graph();
/// let a_hat = graph.normalized_adjacency();
/// assert_eq!(a_hat.rows(), graph.num_vertices());
/// // Normalised adjacency is symmetric.
/// for i in 0..a_hat.rows() {
///     for j in 0..a_hat.cols() {
///         assert!((a_hat[(i, j)] - a_hat[(j, i)]).abs() < 1e-12);
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyGraph {
    num_vertices: usize,
    /// Adjacency list; `edges[i]` holds the neighbours of vertex `i` (no self loops).
    edges: Vec<Vec<usize>>,
}

impl TopologyGraph {
    /// Builds the graph from a circuit netlist.
    ///
    /// Two components are adjacent when they share at least one net that is
    /// not marked as a supply rail.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_components();
        let supply: HashSet<usize> = circuit
            .nets()
            .iter()
            .filter(|net| net.is_supply)
            .map(|net| net.id.index())
            .collect();

        let mut edges = vec![Vec::new(); n];
        let comps = circuit.components();
        for i in 0..n {
            let nets_i: HashSet<usize> = comps[i]
                .terminals
                .iter()
                .map(|t| t.index())
                .filter(|t| !supply.contains(t))
                .collect();
            for (j, comp_j) in comps.iter().enumerate().skip(i + 1) {
                let shares = comp_j.terminals.iter().any(|t| nets_i.contains(&t.index()));
                if shares {
                    edges[i].push(j);
                    edges[j].push(i);
                }
            }
        }
        TopologyGraph {
            num_vertices: n,
            edges,
        }
    }

    /// Builds a graph directly from an edge list (useful in tests and for
    /// synthetic graphs).
    ///
    /// Self loops and duplicate edges are ignored.
    pub fn from_edges(num_vertices: usize, edge_list: &[(usize, usize)]) -> Self {
        let mut edges = vec![Vec::new(); num_vertices];
        let mut seen = HashSet::new();
        for &(a, b) in edge_list {
            if a == b || a >= num_vertices || b >= num_vertices {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                edges[a].push(b);
                edges[b].push(a);
            }
        }
        TopologyGraph {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices (components).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum::<usize>() / 2
    }

    /// Degree (number of neighbours) of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.num_vertices()`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges[v].len()
    }

    /// Neighbours of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.num_vertices()`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.edges[v]
    }

    /// The raw adjacency matrix `A` (no self loops), as a dense matrix.
    pub fn adjacency(&self) -> Matrix {
        let mut a = Matrix::zeros(self.num_vertices, self.num_vertices);
        for (i, nbrs) in self.edges.iter().enumerate() {
            for &j in nbrs {
                a[(i, j)] = 1.0;
            }
        }
        a
    }

    /// The symmetrically normalised adjacency with self loops,
    /// `D̃^-1/2 (A + I) D̃^-1/2` from Kipf & Welling, used by every GCN layer.
    pub fn normalized_adjacency(&self) -> Matrix {
        let n = self.num_vertices;
        let mut a_tilde = self.adjacency();
        for i in 0..n {
            a_tilde[(i, i)] += 1.0;
        }
        let deg: Vec<f64> = (0..n).map(|i| a_tilde.row(i).iter().sum::<f64>()).collect();
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if a_tilde[(i, j)] != 0.0 {
                    out[(i, j)] = a_tilde[(i, j)] / (deg[i] * deg[j]).sqrt();
                }
            }
        }
        out
    }

    /// Number of hops needed for one vertex to reach the farthest vertex
    /// reachable from it (graph eccentricity), maximised over vertices:
    /// the graph diameter of the largest connected component.
    ///
    /// The paper stacks seven GCN layers "to make sure the last layer has a
    /// global receptive field"; this helper lets callers verify that the
    /// chosen depth is at least the diameter.
    pub fn diameter(&self) -> usize {
        let mut diameter = 0;
        for start in 0..self.num_vertices {
            let dist = self.bfs_distances(start);
            let ecc = dist.iter().copied().flatten().max().unwrap_or(0);
            diameter = diameter.max(ecc);
        }
        diameter
    }

    /// Returns `true` if every vertex can reach every other vertex.
    pub fn is_connected(&self) -> bool {
        if self.num_vertices == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|d| d.is_some())
    }

    fn bfs_distances(&self, start: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.num_vertices];
        let mut queue = std::collections::VecDeque::new();
        dist[start] = Some(0);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let d = dist[v].expect("queued vertices have distances");
            for &w in &self.edges[v] {
                if dist[w].is_none() {
                    dist[w] = Some(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitBuilder;

    #[test]
    fn shared_signal_net_creates_edge_but_supply_does_not() {
        let mut b = CircuitBuilder::new("t");
        b.supply("vdd");
        b.net("x");
        b.net("y");
        b.resistor("R1", "vdd", "x").unwrap();
        b.resistor("R2", "vdd", "y").unwrap();
        b.resistor("R3", "x", "y").unwrap();
        let c = b.build().unwrap();
        let g = c.topology_graph();
        // R1-R2 only share vdd (supply) -> no edge; R3 shares x with R1 and y with R2.
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn from_edges_ignores_self_loops_and_duplicates() {
        let g = TopologyGraph::from_edges(3, &[(0, 1), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn normalized_adjacency_rows_of_isolated_vertex() {
        let g = TopologyGraph::from_edges(2, &[]);
        let a = g.normalized_adjacency();
        // Isolated vertex with self loop: degree 1, entry 1.0.
        assert!((a[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((a[(0, 1)]).abs() < 1e-12);
    }

    #[test]
    fn normalized_adjacency_is_symmetric_and_bounded() {
        let g = TopologyGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let a = g.normalized_adjacency();
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
                assert!(a[(i, j)] >= 0.0 && a[(i, j)] <= 1.0);
            }
        }
    }

    #[test]
    fn diameter_of_path_graph() {
        let g = TopologyGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = TopologyGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn adjacency_matches_edge_list() {
        let g = TopologyGraph::from_edges(3, &[(0, 2)]);
        let a = g.adjacency();
        assert_eq!(a[(0, 2)], 1.0);
        assert_eq!(a[(2, 0)], 1.0);
        assert_eq!(a[(0, 1)], 0.0);
        assert_eq!(a[(0, 0)], 0.0);
    }
}
