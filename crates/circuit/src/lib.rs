//! Circuit netlist model for the GCN-RL circuit designer.
//!
//! The paper's environment works on a fixed analog topology: its vertices are
//! sizable components (NMOS/PMOS transistors, resistors, capacitors), its
//! edges are the wires connecting them.  This crate provides everything the
//! optimisation loop needs to know about such a topology *before* simulation:
//!
//! * [`Circuit`] — the netlist: components, nets, and supply/ground marking.
//! * [`TopologyGraph`] — the component graph with the normalised adjacency
//!   matrix `D̃^-1/2 (A + I) D̃^-1/2` consumed by the GCN layers.
//! * [`TechnologyNode`] — device model parameters and size bounds for the
//!   250/180/130/65/45 nm nodes used in the paper's transfer experiments.
//! * [`DesignSpace`] / [`ParamVector`] — per-component search ranges, the
//!   action denormalisation from `[-1, 1]`, rounding to manufacturing grid,
//!   and matching-group refinement (Sec. III-B step 4 of the paper).
//! * [`benchmarks`] — the four circuits evaluated in the paper: a two-stage
//!   transimpedance amplifier, a two-stage voltage amplifier, a three-stage
//!   transimpedance amplifier and a low-dropout regulator.
//!
//! # Examples
//!
//! ```
//! use gcnrl_circuit::benchmarks;
//! use gcnrl_circuit::TechnologyNode;
//!
//! let circuit = benchmarks::two_stage_tia();
//! let graph = circuit.topology_graph();
//! assert_eq!(graph.num_vertices(), circuit.num_components());
//!
//! let node = TechnologyNode::tsmc180();
//! let space = circuit.design_space(&node);
//! assert_eq!(space.num_parameters(), space.nominal().to_flat().len());
//! ```

mod component;
mod design_space;
mod graph;
mod netlist;
mod refine;
mod technology;

pub mod benchmarks;

pub use component::{Component, ComponentId, ComponentKind, ComponentParams, MosSizing};
pub use design_space::{DesignSpace, ParamBounds, ParamScale, ParamVector};
pub use graph::TopologyGraph;
pub use netlist::{Circuit, CircuitBuilder, CircuitError, Net, NetId};
pub use refine::{MatchingGroup, Refiner};
pub use technology::{MosModelParams, MosPolarity, TechnologyNode};
