use crate::component::{ComponentId, ComponentParams, MosSizing};
use crate::design_space::{DesignSpace, ParamVector};
use crate::netlist::Circuit;
use serde::{Deserialize, Serialize};

/// A set of components that must remain identically sized.
///
/// Analog circuits rely on matched devices — differential pairs, current
/// mirror legs, ratioed output stages.  The paper refines the raw agent
/// actions "to guarantee the transistor matching"; a `MatchingGroup` is the
/// declarative form of that constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchingGroup {
    /// Human-readable label, e.g. `"input_pair"`.
    pub label: String,
    /// Component ids constrained to identical parameters.
    pub members: Vec<ComponentId>,
}

/// Applies the refinement step of the sizing loop: matching-group
/// harmonisation followed by re-clamping/rounding through the design space.
///
/// # Examples
///
/// ```
/// use gcnrl_circuit::{benchmarks, Refiner, TechnologyNode};
///
/// let circuit = benchmarks::two_stage_tia();
/// let node = TechnologyNode::tsmc180();
/// let space = circuit.design_space(&node);
/// let refiner = Refiner::new(&circuit);
///
/// let sized = space.nominal();
/// let refined = refiner.refine(&space, &sized);
/// // Refinement is idempotent.
/// assert_eq!(refined, refiner.refine(&space, &refined));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Refiner {
    groups: Vec<MatchingGroup>,
}

impl Refiner {
    /// Creates a refiner from the circuit's declared matching groups.
    pub fn new(circuit: &Circuit) -> Self {
        Refiner {
            groups: circuit.matching_groups().to_vec(),
        }
    }

    /// Creates a refiner from explicit groups (used in tests).
    pub fn from_groups(groups: Vec<MatchingGroup>) -> Self {
        Refiner { groups }
    }

    /// The matching groups this refiner enforces.
    pub fn groups(&self) -> &[MatchingGroup] {
        &self.groups
    }

    /// Harmonises every matching group (members take the element-wise mean of
    /// the group) and re-applies bounds/grid rounding.
    pub fn refine(&self, space: &DesignSpace, pv: &ParamVector) -> ParamVector {
        let mut params: Vec<ComponentParams> = pv.params().to_vec();
        for group in &self.groups {
            if group.members.len() < 2 {
                continue;
            }
            let member_vals: Vec<Vec<f64>> = group
                .members
                .iter()
                .map(|id| params[id.index()].to_vec())
                .collect();
            let dims = member_vals[0].len();
            let mean: Vec<f64> = (0..dims)
                .map(|d| member_vals.iter().map(|v| v[d]).sum::<f64>() / member_vals.len() as f64)
                .collect();
            for id in &group.members {
                params[id.index()] = match params[id.index()] {
                    ComponentParams::Mos(_) => ComponentParams::Mos(MosSizing::new(
                        mean[0],
                        mean[1],
                        mean[2].round().max(1.0) as u32,
                    )),
                    ComponentParams::Resistance(_) => ComponentParams::Resistance(mean[0]),
                    ComponentParams::Capacitance(_) => ComponentParams::Capacitance(mean[0]),
                };
            }
        }
        space.refine(&ParamVector::new(params))
    }

    /// Returns `true` if every matching group of `pv` is already harmonised.
    pub fn is_matched(&self, pv: &ParamVector) -> bool {
        self.groups.iter().all(|group| {
            let mut iter = group.members.iter();
            let first = match iter.next() {
                Some(id) => pv.params()[id.index()].to_vec(),
                None => return true,
            };
            iter.all(|id| {
                pv.params()[id.index()]
                    .to_vec()
                    .iter()
                    .zip(&first)
                    .all(|(a, b)| (a - b).abs() < 1e-12)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::technology::TechnologyNode;

    #[test]
    fn groups_are_harmonised() {
        let circuit = benchmarks::two_stage_tia();
        let node = TechnologyNode::tsmc180();
        let space = circuit.design_space(&node);
        let refiner = Refiner::new(&circuit);
        assert!(
            !refiner.groups().is_empty(),
            "benchmark must declare matching"
        );

        // Start from deliberately mismatched actions.
        let actions: Vec<Vec<f64>> = (0..circuit.num_components())
            .map(|i| vec![if i % 2 == 0 { -0.8 } else { 0.8 }; 3])
            .collect();
        let pv = space.denormalize(&actions);
        let refined = refiner.refine(&space, &pv);
        assert!(refiner.is_matched(&refined));
        assert!(space.validate(&refined));
    }

    #[test]
    fn refine_is_idempotent() {
        let circuit = benchmarks::three_stage_tia();
        let node = TechnologyNode::n65();
        let space = circuit.design_space(&node);
        let refiner = Refiner::new(&circuit);
        let pv = space.nominal();
        let once = refiner.refine(&space, &pv);
        let twice = refiner.refine(&space, &once);
        assert_eq!(once, twice);
    }

    #[test]
    fn empty_groups_pass_through() {
        let circuit = benchmarks::two_stage_tia();
        let node = TechnologyNode::tsmc180();
        let space = circuit.design_space(&node);
        let refiner = Refiner::from_groups(vec![]);
        let pv = space.nominal();
        assert_eq!(refiner.refine(&space, &pv), space.refine(&pv));
        assert!(refiner.is_matched(&pv));
    }
}
