//! Reinforcement-learning primitives used by the GCN-RL circuit designer.
//!
//! The paper trains its agent with DDPG (Algorithm 1): a replay buffer of
//! `(state, action, reward)` transitions, a warm-up phase of random actions,
//! truncated-normal exploration noise with exponential decay, and an
//! exponential-moving-average reward baseline that reduces the variance of
//! the critic's regression target.  Those pieces live here; the actor–critic
//! networks themselves (which need the circuit graph) live in the `gcnrl`
//! core crate.
//!
//! # Examples
//!
//! ```
//! use gcnrl_rl::{DdpgConfig, EmaBaseline, ExplorationNoise, ReplayBuffer};
//!
//! let config = DdpgConfig::default();
//! let mut buffer: ReplayBuffer<Vec<f64>> = ReplayBuffer::new(config.replay_capacity);
//! buffer.push(vec![0.1, -0.2], 1.5);
//! assert_eq!(buffer.len(), 1);
//!
//! let mut noise = ExplorationNoise::new(0.5, 0.99, 42);
//! let sample = noise.sample();
//! assert!(sample.abs() <= 2.0 * 0.5);
//!
//! let mut baseline = EmaBaseline::new(0.95);
//! baseline.update(1.0);
//! assert!(baseline.value() > 0.0);
//! ```

mod baseline;
mod buffer;
mod config;
mod noise;
mod rollout;

pub use baseline::EmaBaseline;
pub use buffer::ReplayBuffer;
pub use config::DdpgConfig;
pub use noise::ExplorationNoise;
pub use rollout::{Rollout, RolloutBatch};
