//! Speculative rollout batches: the unit of work of the batched exploration
//! pipeline.
//!
//! One policy step proposes `k` candidate actions, the execution engine
//! evaluates them as one batch, and the learner ingests all `k` transitions
//! while stepping the networks on the best-of-`k` outcome.  [`RolloutBatch`]
//! is the container that travels through that propose → evaluate → learn
//! pipeline; the population-based baselines (ES / Random / MACE) score their
//! generations through the same type, so every optimizer shares one batched
//! evaluation idiom instead of ad-hoc `Vec<(f64, ...)>` plumbing.
//!
//! The type is generic over the action encoding `A` (an action matrix for the
//! RL agent, a flat unit vector for the black-box baselines) and the outcome
//! type `O` (kept opaque here so this crate stays independent of the
//! simulator's report types).

/// One evaluated candidate: the proposed action, what the environment
/// reported for it, and the scalar training signals derived from the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollout<A, O> {
    /// The proposed action, in the optimizer's own encoding.
    pub action: A,
    /// The environment's evaluation of the action.
    pub outcome: O,
    /// The scalar reward (the FoM in the sizing problem).
    pub reward: f64,
    /// Selection priority.  Defaults to the reward; optimizers may overwrite
    /// it (e.g. with a rank or an advantage) without touching the reward the
    /// replay buffer stores.
    pub priority: f64,
}

/// An ordered batch of evaluated candidates from one proposal round.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutBatch<A, O> {
    rollouts: Vec<Rollout<A, O>>,
}

impl<A, O> Default for RolloutBatch<A, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A, O> RolloutBatch<A, O> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        RolloutBatch {
            rollouts: Vec::new(),
        }
    }

    /// Creates an empty batch with room for `k` candidates.
    pub fn with_capacity(k: usize) -> Self {
        RolloutBatch {
            rollouts: Vec::with_capacity(k),
        }
    }

    /// Appends one evaluated candidate; the priority defaults to the reward.
    pub fn push(&mut self, action: A, outcome: O, reward: f64) {
        self.rollouts.push(Rollout {
            action,
            outcome,
            reward,
            priority: reward,
        });
    }

    /// Number of candidates in the batch.
    pub fn len(&self) -> usize {
        self.rollouts.len()
    }

    /// Returns `true` when the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.rollouts.is_empty()
    }

    /// The candidates in proposal order.
    pub fn rollouts(&self) -> &[Rollout<A, O>] {
        &self.rollouts
    }

    /// Iterates over the candidates in proposal order.
    pub fn iter(&self) -> std::slice::Iter<'_, Rollout<A, O>> {
        self.rollouts.iter()
    }

    /// Index of the highest-priority candidate (the first one on ties, so
    /// selection is deterministic), or `None` for an empty batch.
    pub fn best_index(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, r) in self.rollouts.iter().enumerate() {
            if best.is_none_or(|b| r.priority > self.rollouts[b].priority) {
                best = Some(i);
            }
        }
        best
    }

    /// The highest-priority candidate, if any.
    pub fn best(&self) -> Option<&Rollout<A, O>> {
        self.best_index().map(|i| &self.rollouts[i])
    }

    /// Candidate indices sorted by descending priority (stable, so equal
    /// priorities keep proposal order — the tie-break the baselines relied on
    /// with their explicit sorts).
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.rollouts.len()).collect();
        order.sort_by(|&a, &b| {
            self.rollouts[b]
                .priority
                .partial_cmp(&self.rollouts[a].priority)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }

    /// The rewards in proposal order.
    pub fn rewards(&self) -> Vec<f64> {
        self.rollouts.iter().map(|r| r.reward).collect()
    }
}

impl<A, O> std::ops::Index<usize> for RolloutBatch<A, O> {
    type Output = Rollout<A, O>;

    fn index(&self, i: usize) -> &Rollout<A, O> {
        &self.rollouts[i]
    }
}

impl<A, O> IntoIterator for RolloutBatch<A, O> {
    type Item = Rollout<A, O>;
    type IntoIter = std::vec::IntoIter<Rollout<A, O>>;

    fn into_iter(self) -> Self::IntoIter {
        self.rollouts.into_iter()
    }
}

impl<'a, A, O> IntoIterator for &'a RolloutBatch<A, O> {
    type Item = &'a Rollout<A, O>;
    type IntoIter = std::slice::Iter<'a, Rollout<A, O>>;

    fn into_iter(self) -> Self::IntoIter {
        self.rollouts.iter()
    }
}

impl<A, O> FromIterator<(A, O, f64)> for RolloutBatch<A, O> {
    fn from_iter<I: IntoIterator<Item = (A, O, f64)>>(iter: I) -> Self {
        let mut batch = RolloutBatch::new();
        for (action, outcome, reward) in iter {
            batch.push(action, outcome, reward);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rewards: &[f64]) -> RolloutBatch<usize, ()> {
        rewards
            .iter()
            .enumerate()
            .map(|(i, &r)| (i, (), r))
            .collect()
    }

    #[test]
    fn push_len_and_priority_defaults_to_reward() {
        let b = batch(&[0.5, 2.0, 1.0]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b[1].priority, 2.0);
        assert_eq!(b.rewards(), vec![0.5, 2.0, 1.0]);
    }

    #[test]
    fn best_picks_highest_priority_and_first_on_ties() {
        let b = batch(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(b.best_index(), Some(1));
        assert_eq!(b.best().unwrap().action, 1);
        assert!(batch(&[]).best().is_none());
    }

    #[test]
    fn ranked_is_descending_and_stable() {
        let b = batch(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(b.ranked(), vec![1, 2, 3, 0]);
    }

    #[test]
    fn overriding_priority_changes_selection_but_not_reward() {
        let mut b = batch(&[1.0, 2.0]);
        b.rollouts[0].priority = 10.0;
        assert_eq!(b.best_index(), Some(0));
        assert_eq!(b.rewards(), vec![1.0, 2.0]);
    }

    #[test]
    fn into_iter_preserves_proposal_order() {
        let b = batch(&[4.0, 5.0]);
        let actions: Vec<usize> = b.into_iter().map(|r| r.action).collect();
        assert_eq!(actions, vec![0, 1]);
    }
}
