use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A bounded replay buffer of `(action, reward)` transitions.
///
/// In the sizing problem the state is a deterministic function of the circuit
/// (it never changes within one optimisation run), so the buffer stores the
/// action representation and the scalar reward; the generic parameter lets
/// the agent choose its own action encoding. Each transition also carries a
/// selection priority (defaulting to the reward, or whatever the rollout
/// pipeline recorded) that [`ReplayBuffer::sample_prioritized`] draws from.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBuffer<A> {
    capacity: usize,
    actions: Vec<A>,
    rewards: Vec<f64>,
    priorities: Vec<f64>,
    next: usize,
}

impl<A: Clone> ReplayBuffer<A> {
    /// Creates an empty buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            actions: Vec::new(),
            rewards: Vec::new(),
            priorities: Vec::new(),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` when the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a transition with priority equal to the reward, overwriting
    /// the oldest one when full.
    pub fn push(&mut self, action: A, reward: f64) {
        self.push_with_priority(action, reward, reward);
    }

    /// Stores a transition with an explicit selection priority, overwriting
    /// the oldest one when full.
    pub fn push_with_priority(&mut self, action: A, reward: f64, priority: f64) {
        if self.actions.len() < self.capacity {
            self.actions.push(action);
            self.rewards.push(reward);
            self.priorities.push(priority);
        } else {
            self.actions[self.next] = action;
            self.rewards[self.next] = reward;
            self.priorities[self.next] = priority;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Ingests a whole rollout batch in proposal order, cloning each action
    /// (the batch usually stays alive for history recording and best-of-`k`
    /// selection after the buffer has absorbed the transitions). Each
    /// transition keeps the priority its rollout recorded, so
    /// [`ReplayBuffer::sample_prioritized`] can draw from what the pipeline
    /// considered promising.
    pub fn ingest<O>(&mut self, batch: &crate::RolloutBatch<A, O>) {
        for rollout in batch.iter() {
            self.push_with_priority(rollout.action.clone(), rollout.reward, rollout.priority);
        }
    }

    /// Samples `batch` transitions uniformly at random (without replacement if
    /// possible, with replacement when the buffer is smaller than the batch).
    pub fn sample(&self, batch: usize, seed: u64) -> Vec<(&A, f64)> {
        if self.is_empty() || batch == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(&mut rng);
        (0..batch)
            .map(|i| {
                let idx = indices[i % indices.len()];
                (&self.actions[idx], self.rewards[idx])
            })
            .collect()
    }

    /// Samples `batch` transitions with rank-based prioritization: the
    /// stored transitions are ranked by priority (highest first, ties keeping
    /// insertion order) and transition at rank `r` is drawn with probability
    /// proportional to `1 / (r + 1)`. Rank-based weighting is robust to the
    /// FoM's arbitrary offset/scale (priorities may be negative) while still
    /// replaying high-priority transitions a logarithmic factor more often.
    /// Sampling is with replacement and deterministic per seed.
    pub fn sample_prioritized(&self, batch: usize, seed: u64) -> Vec<(&A, f64)> {
        if self.is_empty() || batch == 0 {
            return Vec::new();
        }
        let mut ranked: Vec<usize> = (0..self.len()).collect();
        ranked.sort_by(|&a, &b| {
            self.priorities[b]
                .partial_cmp(&self.priorities[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let cumulative: Vec<f64> = ranked
            .iter()
            .enumerate()
            .scan(0.0, |acc, (rank, _)| {
                *acc += 1.0 / (rank as f64 + 1.0);
                Some(*acc)
            })
            .collect();
        let total = *cumulative.last().expect("non-empty buffer");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..batch)
            .map(|_| {
                let draw = rng.gen::<f64>() * total;
                let pos = cumulative
                    .partition_point(|&c| c < draw)
                    .min(ranked.len() - 1);
                let idx = ranked[pos];
                (&self.actions[idx], self.rewards[idx])
            })
            .collect()
    }

    /// The stored priorities in insertion-slot order (test/diagnostic view).
    pub fn priorities(&self) -> &[f64] {
        &self.priorities
    }

    /// The best reward seen so far, if any transition is stored.
    pub fn best_reward(&self) -> Option<f64> {
        self.rewards
            .iter()
            .copied()
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut buf = ReplayBuffer::new(3);
        assert!(buf.is_empty());
        buf.push(vec![1.0], 0.5);
        buf.push(vec![2.0], 1.5);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.capacity(), 3);
        assert_eq!(buf.best_reward(), Some(1.5));
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(1, 0.0);
        buf.push(2, 1.0);
        buf.push(3, 2.0); // overwrites the first entry
        assert_eq!(buf.len(), 2);
        let sampled: Vec<i32> = buf.sample(10, 0).iter().map(|(a, _)| **a).collect();
        assert!(!sampled.contains(&1));
        assert!(sampled.contains(&3));
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let mut buf = ReplayBuffer::new(100);
        for i in 0..50 {
            buf.push(i, i as f64);
        }
        let a: Vec<f64> = buf.sample(8, 7).iter().map(|(_, r)| *r).collect();
        let b: Vec<f64> = buf.sample(8, 7).iter().map(|(_, r)| *r).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let buf: ReplayBuffer<u8> = ReplayBuffer::new(4);
        assert!(buf.sample(4, 0).is_empty());
        assert_eq!(buf.best_reward(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: ReplayBuffer<u8> = ReplayBuffer::new(0);
    }

    #[test]
    fn prioritized_sampling_is_deterministic_and_skews_toward_high_priority() {
        let mut buf = ReplayBuffer::new(100);
        // Rewards are all distinct; priorities make index 63 dominant.
        for i in 0..64 {
            buf.push_with_priority(i, i as f64, if i == 63 { 1e6 } else { -(i as f64) });
        }
        let a: Vec<f64> = buf
            .sample_prioritized(16, 9)
            .iter()
            .map(|(_, r)| *r)
            .collect();
        let b: Vec<f64> = buf
            .sample_prioritized(16, 9)
            .iter()
            .map(|(_, r)| *r)
            .collect();
        assert_eq!(a, b, "same seed must reproduce the same draw");
        // Rank 0 is drawn with p = 1 / (1 * H_64) ≈ 0.21 per draw; over many
        // draws the top-priority transition appears far more often than the
        // uniform 1/64 would allow.
        let draws: Vec<f64> = (0..50)
            .flat_map(|s| buf.sample_prioritized(16, s))
            .map(|(_, r)| r)
            .collect();
        let top = draws.iter().filter(|r| **r == 63.0).count();
        assert!(
            top > draws.len() / 20,
            "top-priority transition under-sampled: {top}/{}",
            draws.len()
        );
    }

    #[test]
    fn prioritized_sampling_handles_negative_priorities_and_empty_buffers() {
        let empty: ReplayBuffer<u8> = ReplayBuffer::new(4);
        assert!(empty.sample_prioritized(4, 0).is_empty());
        let mut buf = ReplayBuffer::new(4);
        buf.push_with_priority(1, -0.2, -0.2);
        buf.push_with_priority(2, -0.1, -0.1);
        let sampled = buf.sample_prioritized(8, 3);
        assert_eq!(sampled.len(), 8);
        assert!(sampled.iter().all(|(_, r)| *r == -0.2 || *r == -0.1));
    }

    #[test]
    fn push_defaults_priority_to_reward_and_overwrites_with_the_slot() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(1, 0.5);
        assert_eq!(buf.priorities(), &[0.5]);
        buf.push_with_priority(2, 1.0, 9.0);
        buf.push_with_priority(3, 2.0, 7.0); // overwrites slot 0
        assert_eq!(buf.priorities(), &[7.0, 9.0]);
    }

    #[test]
    fn ingest_pushes_every_rollout_in_proposal_order() {
        let mut batch: crate::RolloutBatch<u8, ()> = crate::RolloutBatch::new();
        batch.push(1, (), 0.5);
        batch.push(2, (), 1.5);
        batch.push(3, (), -0.5);

        // Ingesting the batch matches pushing its transitions one by one.
        let mut wholesale = ReplayBuffer::new(8);
        wholesale.ingest(&batch);
        let mut serial = ReplayBuffer::new(8);
        for r in batch.iter() {
            serial.push(r.action, r.reward);
        }
        assert_eq!(wholesale, serial);
        assert_eq!(wholesale.len(), 3);
        assert_eq!(wholesale.best_reward(), Some(1.5));
    }
}
