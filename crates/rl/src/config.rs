use serde::{Deserialize, Serialize};

/// Hyper-parameters of the DDPG search (paper Algorithm 1).
///
/// The defaults follow the paper's experimental setup scaled to the
/// laptop-sized simulator: 100 warm-up episodes of random sampling followed
/// by noisy on-policy exploration, a modest replay buffer, and exponentially
/// decaying exploration noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Total number of search episodes `M` (each episode is one simulation).
    pub episodes: usize,
    /// Number of warm-up episodes `W` with uniformly random actions.
    pub warmup: usize,
    /// Mini-batch size `N_s` sampled from the replay buffer per update.
    pub batch_size: usize,
    /// Replay-buffer capacity.
    pub replay_capacity: usize,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Initial exploration-noise standard deviation.
    pub noise_sigma: f64,
    /// Per-episode multiplicative decay of the exploration noise.
    pub noise_decay: f64,
    /// Decay of the exponential-moving-average reward baseline `B`.
    pub baseline_decay: f64,
    /// Number of hidden units per layer in the actor/critic.
    pub hidden_dim: usize,
    /// Number of GCN layers (the paper uses seven for a global receptive field).
    pub gcn_layers: usize,
    /// Random seed controlling initialisation, warm-up sampling and noise.
    pub seed: u64,
    /// Speculative rollout width `k`: candidates proposed (and evaluated as
    /// one engine batch) per policy step during exploration.  `1` reproduces
    /// the serial trainer bit-identically; larger values trade policy updates
    /// for parallel environment throughput at the same simulation budget.
    pub rollout_k: usize,
    /// Correlation of the `k` exploration perturbations within one rollout
    /// round (see `ExplorationNoise::sample_correlated`); ignored at `k = 1`.
    pub rollout_rho: f64,
    /// Adaptive rollout ceiling: when greater than `rollout_k`, the rollout
    /// width grows linearly from `rollout_k` toward this value as the
    /// exploration noise decays (`width = k + (k_max - k) * decay_progress`,
    /// rounded down) — wide speculative batches are cheap once the policy
    /// has mostly converged and candidates cluster. `0` (the default) keeps
    /// the width fixed at `rollout_k`.
    pub rollout_k_max: usize,
    /// When `true`, mini-batches are drawn with rank-based prioritized
    /// sampling (`ReplayBuffer::sample_prioritized`) over the per-candidate
    /// priorities the rollout pipeline records, instead of uniformly. The
    /// uniform default is pinned by the serial-equivalence regression test.
    pub prioritized_replay: bool,
    /// When `true`, rollout batches are evaluated through the grouped
    /// backend path (`evaluate_batch_with_base`): the round's unperturbed
    /// policy action anchors a shared base factorisation and each candidate
    /// is corrected through a rank-k solver update. Grouped results match
    /// the per-candidate path to solver accuracy but not bit-exactly, so the
    /// default stays `false` to preserve the pinned `k = 1` serial
    /// equivalence.
    pub grouped_rollouts: bool,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            episodes: 500,
            warmup: 100,
            batch_size: 32,
            replay_capacity: 4096,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            noise_sigma: 0.4,
            noise_decay: 0.99,
            baseline_decay: 0.95,
            hidden_dim: 64,
            gcn_layers: 7,
            seed: 0,
            rollout_k: 1,
            rollout_rho: 0.5,
            rollout_k_max: 0,
            prioritized_replay: false,
            grouped_rollouts: false,
        }
    }
}

impl DdpgConfig {
    /// A configuration sized for fast unit/integration tests.
    pub fn fast() -> Self {
        DdpgConfig {
            episodes: 60,
            warmup: 20,
            batch_size: 16,
            hidden_dim: 32,
            gcn_layers: 3,
            ..Self::default()
        }
    }

    /// The paper's fine-tuning budget for transfer experiments:
    /// "300 in total: 100 warm-up, 200 exploration".
    pub fn transfer_budget() -> Self {
        DdpgConfig {
            episodes: 300,
            warmup: 100,
            ..Self::default()
        }
    }

    /// Returns a copy with a different random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different episode/warm-up budget.
    pub fn with_budget(mut self, episodes: usize, warmup: usize) -> Self {
        self.episodes = episodes;
        self.warmup = warmup;
        self
    }

    /// Returns a copy with a different speculative rollout width.
    pub fn with_rollout_k(mut self, k: usize) -> Self {
        self.rollout_k = k.max(1);
        self
    }

    /// Returns a copy with a different intra-rollout noise correlation.
    pub fn with_rollout_rho(mut self, rho: f64) -> Self {
        self.rollout_rho = rho.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy that widens the rollout from `rollout_k` toward
    /// `k_max` as the exploration noise decays. Values at or below
    /// `rollout_k` disable the adaptation (fixed-width behaviour).
    pub fn with_adaptive_rollout(mut self, k_max: usize) -> Self {
        self.rollout_k_max = k_max;
        self
    }

    /// Returns a copy that samples replay mini-batches with rank-based
    /// prioritization instead of uniformly.
    pub fn with_prioritized_replay(mut self) -> Self {
        self.prioritized_replay = true;
        self
    }

    /// Returns a copy that evaluates rollout batches through the grouped
    /// backend path (base factorisation shared across the round's
    /// candidates).
    pub fn with_grouped_rollouts(mut self) -> Self {
        self.grouped_rollouts = true;
        self
    }

    /// The rollout width to use at a given noise-decay progress (`0` at the
    /// start of exploration, `1` when the noise has fully decayed).
    pub fn rollout_width_at(&self, decay_progress: f64) -> usize {
        let k = self.rollout_k.max(1);
        if self.rollout_k_max <= k {
            return k;
        }
        let span = (self.rollout_k_max - k) as f64;
        k + (span * decay_progress.clamp(0.0, 1.0)).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DdpgConfig::default();
        assert!(c.warmup < c.episodes);
        assert!(c.gcn_layers >= 1);
        assert!(c.noise_decay <= 1.0);
        // Uniform replay is the pinned default; the flag is opt-in.
        assert!(!c.prioritized_replay);
        assert!(c.with_prioritized_replay().prioritized_replay);
        // Grouped rollouts are opt-in too: the default preserves the k = 1
        // serial bit-equivalence.
        assert!(!c.grouped_rollouts);
        assert!(
            DdpgConfig::default()
                .with_grouped_rollouts()
                .grouped_rollouts
        );
    }

    #[test]
    fn transfer_budget_matches_paper() {
        let c = DdpgConfig::transfer_budget();
        assert_eq!(c.episodes, 300);
        assert_eq!(c.warmup, 100);
    }

    #[test]
    fn builder_helpers() {
        let c = DdpgConfig::fast().with_seed(9).with_budget(10, 2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.episodes, 10);
        assert_eq!(c.warmup, 2);
    }

    #[test]
    fn rollout_builders_clamp_their_arguments() {
        let c = DdpgConfig::default()
            .with_rollout_k(8)
            .with_rollout_rho(0.3);
        assert_eq!(c.rollout_k, 8);
        assert_eq!(c.rollout_rho, 0.3);
        assert_eq!(DdpgConfig::default().with_rollout_k(0).rollout_k, 1);
        assert_eq!(DdpgConfig::default().with_rollout_rho(7.0).rollout_rho, 1.0);
        // The default is the serial trainer.
        assert_eq!(DdpgConfig::default().rollout_k, 1);
    }

    #[test]
    fn adaptive_rollout_width_grows_with_decay_progress() {
        let c = DdpgConfig::default()
            .with_rollout_k(2)
            .with_adaptive_rollout(8);
        assert_eq!(c.rollout_width_at(0.0), 2);
        assert_eq!(c.rollout_width_at(0.5), 5);
        assert_eq!(c.rollout_width_at(1.0), 8);
        // Progress is clamped.
        assert_eq!(c.rollout_width_at(7.0), 8);
        assert_eq!(c.rollout_width_at(-1.0), 2);
    }

    #[test]
    fn adaptive_rollout_is_disabled_by_default_and_below_k() {
        let fixed = DdpgConfig::default().with_rollout_k(4);
        assert_eq!(fixed.rollout_k_max, 0);
        assert_eq!(fixed.rollout_width_at(1.0), 4);
        // A ceiling at or below k keeps the width fixed.
        let capped = fixed.with_adaptive_rollout(3);
        assert_eq!(capped.rollout_width_at(1.0), 4);
    }
}
