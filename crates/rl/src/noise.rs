use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Truncated-normal exploration noise with exponential decay, as used during
/// the exploration phase of the paper's Algorithm 1.
///
/// Samples are drawn from `N(0, sigma^2)`, truncated to `[-2 sigma, 2 sigma]`,
/// and `sigma` shrinks by the decay factor after every episode.
#[derive(Debug, Clone)]
pub struct ExplorationNoise {
    sigma: f64,
    initial_sigma: f64,
    decay: f64,
    rng: StdRng,
}

impl ExplorationNoise {
    /// Creates noise with initial standard deviation `sigma` and per-episode
    /// multiplicative `decay`, deterministically seeded.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or `decay` is not in `(0, 1]`.
    pub fn new(sigma: f64, decay: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        ExplorationNoise {
            sigma,
            initial_sigma: sigma,
            decay,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one noise sample, truncated to two standard deviations.
    pub fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        let normal = Normal::new(0.0, self.sigma).expect("sigma validated");
        let raw: f64 = normal.sample(&mut self.rng);
        raw.clamp(-2.0 * self.sigma, 2.0 * self.sigma)
    }

    /// Draws a vector of independent samples.
    pub fn sample_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Applies one episode of exponential decay to the standard deviation.
    pub fn decay_step(&mut self) {
        self.sigma *= self.decay;
    }

    /// Resets the standard deviation to its initial value (used when a
    /// pre-trained agent is transferred to a new circuit and needs a short
    /// fresh exploration phase).
    pub fn reset(&mut self) {
        self.sigma = self.initial_sigma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_truncated() {
        let mut noise = ExplorationNoise::new(0.3, 0.99, 1);
        for _ in 0..1000 {
            let s = noise.sample();
            assert!(s.abs() <= 0.6 + 1e-12);
        }
    }

    #[test]
    fn decay_reduces_sigma_and_reset_restores_it() {
        let mut noise = ExplorationNoise::new(0.5, 0.9, 0);
        for _ in 0..10 {
            noise.decay_step();
        }
        assert!((noise.sigma() - 0.5 * 0.9f64.powi(10)).abs() < 1e-12);
        noise.reset();
        assert_eq!(noise.sigma(), 0.5);
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut noise = ExplorationNoise::new(0.0, 0.5, 0);
        assert_eq!(noise.sample(), 0.0);
        assert_eq!(noise.sample_vec(3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ExplorationNoise::new(0.2, 0.99, 5);
        let mut b = ExplorationNoise::new(0.2, 0.99, 5);
        assert_eq!(a.sample_vec(10), b.sample_vec(10));
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn invalid_decay_panics() {
        let _ = ExplorationNoise::new(0.1, 0.0, 0);
    }
}
