use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Truncated-normal exploration noise with exponential decay, as used during
/// the exploration phase of the paper's Algorithm 1.
///
/// Samples are drawn from `N(0, sigma^2)`, truncated to `[-2 sigma, 2 sigma]`,
/// and `sigma` shrinks by the decay factor after every episode.
#[derive(Debug, Clone)]
pub struct ExplorationNoise {
    sigma: f64,
    initial_sigma: f64,
    decay: f64,
    rng: StdRng,
}

impl ExplorationNoise {
    /// Creates noise with initial standard deviation `sigma` and per-episode
    /// multiplicative `decay`, deterministically seeded.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or `decay` is not in `(0, 1]`.
    pub fn new(sigma: f64, decay: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        ExplorationNoise {
            sigma,
            initial_sigma: sigma,
            decay,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The standard deviation the noise started with (what
    /// [`ExplorationNoise::reset`] restores).
    pub fn initial_sigma(&self) -> f64 {
        self.initial_sigma
    }

    /// How far the noise has decayed, in `[0, 1]`: `0` before the first
    /// decay step, approaching `1` as `sigma` shrinks toward zero. Adaptive
    /// rollout widening keys off this instead of raw `sigma` so the schedule
    /// is independent of the configured starting amplitude.
    pub fn decay_progress(&self) -> f64 {
        if self.initial_sigma <= 0.0 {
            return 1.0;
        }
        (1.0 - self.sigma / self.initial_sigma).clamp(0.0, 1.0)
    }

    /// Draws one noise sample, truncated to two standard deviations.
    pub fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        let normal = Normal::new(0.0, self.sigma).expect("sigma validated");
        let raw: f64 = normal.sample(&mut self.rng);
        raw.clamp(-2.0 * self.sigma, 2.0 * self.sigma)
    }

    /// Draws a vector of independent samples.
    pub fn sample_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Draws `k` correlated perturbation vectors of length `n` for one
    /// speculative rollout round.
    ///
    /// Candidate 0 draws exactly the samples [`ExplorationNoise::sample_vec`]
    /// would produce, so a batch of one consumes the RNG stream bit-identically
    /// to the serial exploration loop (the `k = 1` equivalence guarantee the
    /// batched trainer relies on). Every additional candidate `j > 0` draws
    /// `n` fresh truncated samples `d` and anchors them to candidate 0:
    /// `rho * base + sqrt(1 - rho^2) * d`, re-clamped to the truncation
    /// interval. This keeps the marginal spread at `sigma` while giving the
    /// candidates pairwise correlation `rho` to candidate 0, so the rollout
    /// batch explores a coherent neighbourhood of the policy action instead of
    /// `k` unrelated directions.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rho` is outside `[0, 1]`.
    pub fn sample_correlated(&mut self, k: usize, n: usize, rho: f64) -> Vec<Vec<f64>> {
        assert!(k > 0, "rollout width k must be positive");
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
        let base = self.sample_vec(n);
        let bound = 2.0 * self.sigma;
        let mix = (1.0 - rho * rho).sqrt();
        let mut batch = Vec::with_capacity(k);
        batch.push(base.clone());
        for _ in 1..k {
            let candidate = base
                .iter()
                .map(|&b| {
                    let d = self.sample();
                    (rho * b + mix * d).clamp(-bound, bound)
                })
                .collect();
            batch.push(candidate);
        }
        batch
    }

    /// Applies one episode of exponential decay to the standard deviation.
    pub fn decay_step(&mut self) {
        self.sigma *= self.decay;
    }

    /// Resets the standard deviation to its initial value (used when a
    /// pre-trained agent is transferred to a new circuit and needs a short
    /// fresh exploration phase).
    pub fn reset(&mut self) {
        self.sigma = self.initial_sigma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_truncated() {
        let mut noise = ExplorationNoise::new(0.3, 0.99, 1);
        for _ in 0..1000 {
            let s = noise.sample();
            assert!(s.abs() <= 0.6 + 1e-12);
        }
    }

    #[test]
    fn decay_reduces_sigma_and_reset_restores_it() {
        let mut noise = ExplorationNoise::new(0.5, 0.9, 0);
        for _ in 0..10 {
            noise.decay_step();
        }
        assert!((noise.sigma() - 0.5 * 0.9f64.powi(10)).abs() < 1e-12);
        assert_eq!(noise.initial_sigma(), 0.5);
        noise.reset();
        assert_eq!(noise.sigma(), 0.5);
    }

    #[test]
    fn decay_progress_runs_from_zero_toward_one() {
        let mut noise = ExplorationNoise::new(0.4, 0.5, 0);
        assert_eq!(noise.decay_progress(), 0.0);
        noise.decay_step();
        assert!((noise.decay_progress() - 0.5).abs() < 1e-12);
        for _ in 0..50 {
            noise.decay_step();
        }
        assert!(noise.decay_progress() > 0.999);
        // Zero-amplitude noise counts as fully decayed.
        assert_eq!(ExplorationNoise::new(0.0, 0.9, 0).decay_progress(), 1.0);
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut noise = ExplorationNoise::new(0.0, 0.5, 0);
        assert_eq!(noise.sample(), 0.0);
        assert_eq!(noise.sample_vec(3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ExplorationNoise::new(0.2, 0.99, 5);
        let mut b = ExplorationNoise::new(0.2, 0.99, 5);
        assert_eq!(a.sample_vec(10), b.sample_vec(10));
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn invalid_decay_panics() {
        let _ = ExplorationNoise::new(0.1, 0.0, 0);
    }

    #[test]
    fn correlated_batch_of_one_matches_the_serial_stream() {
        let mut serial = ExplorationNoise::new(0.3, 0.99, 11);
        let mut batched = ExplorationNoise::new(0.3, 0.99, 11);
        let reference = serial.sample_vec(12);
        let batch = batched.sample_correlated(1, 12, 0.5);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0], reference);
        // The RNG streams stay in lockstep afterwards.
        assert_eq!(serial.sample(), batched.sample());
    }

    #[test]
    fn correlated_candidates_stay_truncated_and_track_the_base() {
        let mut noise = ExplorationNoise::new(0.4, 0.99, 3);
        let batch = noise.sample_correlated(6, 50, 0.8);
        assert_eq!(batch.len(), 6);
        let bound = 2.0 * 0.4;
        for candidate in &batch {
            assert_eq!(candidate.len(), 50);
            assert!(candidate.iter().all(|v| v.abs() <= bound + 1e-12));
        }
        // With rho = 0.8 the candidates correlate positively with the base.
        let base = &batch[0];
        for candidate in &batch[1..] {
            let dot: f64 = base.iter().zip(candidate.iter()).map(|(a, b)| a * b).sum();
            let nb: f64 = base.iter().map(|a| a * a).sum::<f64>().sqrt();
            let nc: f64 = candidate.iter().map(|a| a * a).sum::<f64>().sqrt();
            assert!(dot / (nb * nc) > 0.3, "candidates must track the base");
        }
    }

    #[test]
    fn fully_decorrelated_candidates_are_fresh_draws() {
        let mut noise = ExplorationNoise::new(0.2, 0.99, 9);
        let batch = noise.sample_correlated(3, 8, 0.0);
        assert_ne!(batch[0], batch[1]);
        assert_ne!(batch[1], batch[2]);
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn invalid_rho_panics() {
        let mut noise = ExplorationNoise::new(0.2, 0.99, 0);
        let _ = noise.sample_correlated(2, 4, 1.5);
    }
}
