use serde::{Deserialize, Serialize};

/// Exponential-moving-average reward baseline.
///
/// Algorithm 1 in the paper subtracts a baseline `B` — "an exponential moving
/// average of all previous rewards" — from the reward in the critic's loss to
/// reduce the variance of the gradient estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmaBaseline {
    decay: f64,
    value: f64,
    initialized: bool,
}

impl EmaBaseline {
    /// Creates a baseline with smoothing factor `decay` in `[0, 1)`; larger
    /// values average over a longer history.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not in `[0, 1)`.
    pub fn new(decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        EmaBaseline {
            decay,
            value: 0.0,
            initialized: false,
        }
    }

    /// Current baseline value (zero before the first update).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Folds a new reward into the average and returns the updated baseline.
    pub fn update(&mut self, reward: f64) -> f64 {
        if self.initialized {
            self.value = self.decay * self.value + (1.0 - self.decay) * reward;
        } else {
            self.value = reward;
            self.initialized = true;
        }
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_takes_the_reward() {
        let mut b = EmaBaseline::new(0.9);
        assert_eq!(b.value(), 0.0);
        assert_eq!(b.update(2.0), 2.0);
    }

    #[test]
    fn converges_to_constant_reward() {
        let mut b = EmaBaseline::new(0.8);
        for _ in 0..200 {
            b.update(1.5);
        }
        assert!((b.value() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tracks_changes_gradually() {
        let mut b = EmaBaseline::new(0.5);
        b.update(0.0);
        b.update(1.0);
        assert!((b.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn invalid_decay_panics() {
        let _ = EmaBaseline::new(1.0);
    }
}
