//! Reactor edge-case fuzzing over the real wire: torn frames split at every
//! byte boundary across reads, server-side write backpressure (partial
//! writes), oversized frames, and mid-pipeline disconnects — after each
//! abuse the reactor must keep serving well-behaved clients.

use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::EngineConfig;
use gcnrl_serve::protocol::{
    encode_frame, write_frame, ClientMsg, FrameReader, Hello, ServerMsg, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use gcnrl_serve::{EvalServer, RegistryConfig, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const BENCHMARK: Benchmark = Benchmark::TwoStageTia;

fn open_server() -> EvalServer {
    EvalServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            registry: RegistryConfig {
                engine: EngineConfig::serial(),
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server")
}

fn hello_frame(session: &str) -> Vec<u8> {
    encode_frame(&ClientMsg::Hello(Hello {
        version: PROTOCOL_VERSION,
        benchmark: BENCHMARK,
        node: TechnologyNode::tsmc180(),
        session: Some(session.to_owned()),
        weight: None,
    }))
    .expect("encode hello")
}

fn nominal() -> ParamVector {
    BENCHMARK
        .circuit()
        .design_space(&TechnologyNode::tsmc180())
        .nominal()
}

fn read_reply(stream: &mut TcpStream, reader: &mut FrameReader) -> ServerMsg {
    reader
        .read_msg(stream, DEFAULT_MAX_FRAME_BYTES)
        .expect("server reply")
}

/// Every byte boundary of the handshake + batch stream, delivered as two
/// separate writes with a pause in between, must reassemble into exactly the
/// same two responses. This fuzzes the incremental `FrameReader` path inside
/// the reactor (partial length prefixes, partial payloads, frame boundaries
/// straddling reads).
#[test]
fn frames_split_at_every_byte_boundary_reassemble() {
    let server = open_server();
    let addr = server.local_addr();
    let mut wire = hello_frame("torn");
    wire.extend_from_slice(
        &encode_frame(&ClientMsg::EvalBatch {
            id: 1,
            channel: 0,
            params: vec![nominal()],
            trace: None,
        })
        .expect("encode batch"),
    );

    // The identical candidate every time: after the first connection the
    // batch is a pure cache hit, so the sweep over every split point stays
    // fast even though each split is a full fresh connection.
    let mut reference: Option<Vec<gcnrl_sim::PerformanceReport>> = None;
    for split in 1..wire.len() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.write_all(&wire[..split]).expect("first half");
        // A short pause so the reactor almost always observes the split as
        // two distinct reads (TCP may still coalesce some — also fine).
        std::thread::sleep(Duration::from_micros(200));
        stream.write_all(&wire[split..]).expect("second half");
        let mut reader = FrameReader::new();
        assert!(
            matches!(read_reply(&mut stream, &mut reader), ServerMsg::Welcome(_)),
            "split at byte {split}: handshake failed"
        );
        match read_reply(&mut stream, &mut reader) {
            ServerMsg::BatchResult { id: 1, reports, .. } => match &reference {
                Some(reference) => {
                    assert_eq!(&reports, reference, "split at byte {split} changed a bit")
                }
                None => reference = Some(reports),
            },
            other => panic!("split at byte {split}: expected BatchResult, got {other:?}"),
        }
    }
    server.shutdown();
    assert_eq!(server.stats().connections_total as usize, wire.len() - 1);
    assert_eq!(server.stats().connections_rejected, 0);
}

/// A client that pipelines a large window of sizeable batches and only
/// starts reading afterwards forces the server's socket buffer full — the
/// nonblocking `FrameWriter` must survive the `WouldBlock` partial writes
/// and deliver every response intact once the client drains.
#[test]
fn write_backpressure_from_a_slow_reader_corrupts_nothing() {
    const WINDOW: usize = 40;
    const CANDIDATES: usize = 100;

    let server = open_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = FrameReader::new();
    stream
        .write_all(&hello_frame("slow-reader"))
        .expect("send hello");
    assert!(matches!(
        read_reply(&mut stream, &mut reader),
        ServerMsg::Welcome(_)
    ));
    // One candidate repeated: the first evaluation fills the cache, the
    // rest are hits, so the responses (~ WINDOW × CANDIDATES reports) are
    // produced much faster than a throttled reader consumes them.
    let params: Vec<ParamVector> = (0..CANDIDATES).map(|_| nominal()).collect();
    for id in 0..WINDOW as u64 {
        write_frame(
            &mut stream,
            &ClientMsg::EvalBatch {
                id,
                channel: 0,
                params: params.clone(),
                trace: None,
            },
        )
        .expect("send batch");
    }
    // Let the server resolve everything and wedge its write buffers before
    // the first read happens.
    std::thread::sleep(Duration::from_millis(300));
    let mut seen = [false; WINDOW];
    for _ in 0..WINDOW {
        match read_reply(&mut stream, &mut reader) {
            ServerMsg::BatchResult { id, reports, .. } => {
                assert_eq!(reports.len(), CANDIDATES, "batch {id} truncated");
                assert!(!seen[id as usize], "batch {id} answered twice");
                seen[id as usize] = true;
            }
            other => panic!("expected BatchResult, got {other:?}"),
        }
    }
    assert!(seen.iter().all(|s| *s), "a pipelined batch went missing");
    write_frame(&mut stream, &ClientMsg::Goodbye).expect("send goodbye");
    assert!(matches!(
        read_reply(&mut stream, &mut reader),
        ServerMsg::Goodbye
    ));
    server.shutdown();
}

/// An oversized length prefix is rejected before any payload allocation and
/// closes only the offending connection.
#[test]
fn oversized_frames_close_the_connection_but_not_the_server() {
    let server = open_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = FrameReader::new();
    stream
        .write_all(&hello_frame("oversized"))
        .expect("send hello");
    assert!(matches!(
        read_reply(&mut stream, &mut reader),
        ServerMsg::Welcome(_)
    ));
    // A 1 GiB frame announcement (never followed by a payload).
    stream
        .write_all(&(1u32 << 30).to_be_bytes())
        .expect("send prefix");
    stream.write_all(&[0u8; 16]).expect("send junk");
    // The server errors (possibly with a final Error frame) and closes; a
    // blocking read drains whatever is left and hits EOF — or a reset, when
    // the server dropped the socket with the junk bytes still unread. Only
    // a timeout would mean the connection was left open.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut sink = Vec::new();
    match stream.read_to_end(&mut sink) {
        Ok(_) => {}
        Err(e) => assert!(
            !matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "the offending connection must be closed, read gave {e}"
        ),
    }

    // The reactor survives: a fresh client is served normally.
    let mut healthy = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = FrameReader::new();
    healthy
        .write_all(&hello_frame("healthy"))
        .expect("send hello");
    assert!(matches!(
        read_reply(&mut healthy, &mut reader),
        ServerMsg::Welcome(_)
    ));
    write_frame(
        &mut healthy,
        &ClientMsg::EvalBatch {
            id: 1,
            channel: 0,
            params: vec![nominal()],
            trace: None,
        },
    )
    .expect("send batch");
    assert!(matches!(
        read_reply(&mut healthy, &mut reader),
        ServerMsg::BatchResult { id: 1, .. }
    ));
    server.shutdown();
}

/// Disconnecting with a full pipeline in flight (requests submitted, none
/// collected) must not wedge the reactor, leak the connection, or affect a
/// concurrent client.
#[test]
fn mid_pipeline_disconnects_leave_the_reactor_healthy() {
    let server = open_server();
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = FrameReader::new();
        stream
            .write_all(&hello_frame("vanishing"))
            .expect("send hello");
        assert!(matches!(
            read_reply(&mut stream, &mut reader),
            ServerMsg::Welcome(_)
        ));
        for id in 0..8u64 {
            write_frame(
                &mut stream,
                &ClientMsg::EvalBatch {
                    id,
                    channel: 0,
                    params: vec![nominal()],
                    trace: None,
                },
            )
            .expect("send batch");
        }
        // Gone without reading a single response.
        drop(stream);
    }
    // A concurrent client on the same service is unaffected.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = FrameReader::new();
    stream
        .write_all(&hello_frame("survivor"))
        .expect("send hello");
    assert!(matches!(
        read_reply(&mut stream, &mut reader),
        ServerMsg::Welcome(_)
    ));
    write_frame(
        &mut stream,
        &ClientMsg::EvalBatch {
            id: 99,
            channel: 0,
            params: vec![nominal()],
            trace: None,
        },
    )
    .expect("send batch");
    assert!(matches!(
        read_reply(&mut stream, &mut reader),
        ServerMsg::BatchResult { id: 99, .. }
    ));
    // Every request the vanished client submitted still resolves inside the
    // service (answers to a dead socket are discarded, never wedged) — the
    // cross-registry pending counter must drain to zero.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.registry().pending_requests() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "requests of the vanished client never resolved"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_active, 0, "the dead connection leaked");
    assert_eq!(stats.connections_total, 2);
}
