//! End-to-end distributed-tracing acceptance: one sharded `evaluate_batch`
//! over two peered shards — including a cross-shard `CacheQuery`/`CacheFill`
//! pull — must reassemble into a single span tree with correct parent/child
//! linkage, results must stay bit-identical with tracing on vs off, and
//! v4/v3/v2 clients must be served unchanged next to the v5 trace carrier.

use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::EngineConfig;
use gcnrl_serve::protocol::{
    encode_frame, v2, write_frame, ClientMsg, FrameReader, Hello, ServerMsg,
    DEFAULT_MAX_FRAME_BYTES, PREV_PROTOCOL_VERSION, V3_PROTOCOL_VERSION,
};
use gcnrl_serve::{
    EvalServer, RegistryConfig, RemoteBackend, RemoteConfig, ServerConfig, ShardedBackend,
    ShardedConfig,
};
use gcnrl_telemetry::{recent_traces, trace_id_for};
use std::io::Write;
use std::net::TcpStream;

const BENCHMARK: Benchmark = Benchmark::TwoStageTia;

fn open_server() -> EvalServer {
    EvalServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            registry: RegistryConfig {
                engine: EngineConfig::serial(),
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// `n` pairwise-distinct candidates, deterministic so every run routes the
/// same keys to the same shards.
fn distinct_candidates(n: usize) -> Vec<ParamVector> {
    let space = BENCHMARK.circuit().design_space(&TechnologyNode::tsmc180());
    (0..n)
        .map(|i| {
            let unit: Vec<f64> = (0..space.num_parameters())
                .map(|j| ((i * 17 + j * 3) % 89) as f64 / 88.0)
                .collect();
            space.from_unit(&unit)
        })
        .collect()
}

/// One parsed span line of the `GCNRL_TRACE` JSONL stream (only lines that
/// carry distributed-tracing ids; legacy-schema lines are skipped).
#[derive(Debug)]
struct JsonlSpan {
    name: String,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
}

fn parse_jsonl_spans(text: &str) -> Vec<JsonlSpan> {
    fn uint(value: &serde::Value) -> Option<u64> {
        match value {
            serde::Value::UInt(n) => Some(*n),
            serde::Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }
    let mut spans = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let value = serde_json::parse_value(line).expect("trace line is valid JSON");
        let serde::Value::Map(entries) = value else {
            panic!("trace line is not an object: {line}");
        };
        let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let (Some(trace_id), Some(span_id)) = (
            field("trace_id").and_then(uint),
            field("span_id").and_then(uint),
        ) else {
            continue; // legacy event without distributed ids
        };
        let Some(serde::Value::Str(name)) = field("name") else {
            panic!("span line without a name: {line}");
        };
        spans.push(JsonlSpan {
            name: name.clone(),
            trace_id,
            span_id,
            parent_id: field("parent_id").and_then(uint),
        });
    }
    spans
}

/// The tentpole pin: two peered shards, a cold shard A pulling B-owned
/// reports over `CacheQuery`/`CacheFill`, one `ShardedBackend` batch — the
/// whole fan-out reassembles into one trace tree rooted at
/// `sharded.evaluate.ns`, and the reports are bit-identical to runs with
/// tracing off.
#[test]
fn sharded_fanout_reassembles_one_span_tree_including_the_peer_pull() {
    let node = TechnologyNode::tsmc180();
    let a = open_server();
    let b = open_server();
    let addr_a = a.local_addr().to_string();
    let addr_b = b.local_addr().to_string();
    let ring = vec![addr_a.clone(), addr_b.clone()];
    a.enable_peering(ring.clone(), addr_a.clone());
    b.enable_peering(ring, addr_b);

    let batch = distinct_candidates(24);

    // Reference, tracing off: warm shard B with the whole batch so A's run
    // below has something to pull over the peer wire.
    let warm = RemoteBackend::connect(b.local_addr(), BENCHMARK, &node).expect("connect shard b");
    let reference = warm.try_evaluate_batch(&batch).expect("warm batch");

    // Traced run: JSONL sink on, sharded client over A only — the server
    // ring still spans both shards, so A peer-pulls every B-owned key.
    let trace_path =
        std::env::temp_dir().join(format!("gcnrl_trace_tree_{}.jsonl", std::process::id()));
    gcnrl_telemetry::set_trace_file(&trace_path).expect("open trace sink");
    let sharded = ShardedBackend::connect(
        &[addr_a],
        BENCHMARK,
        &node,
        ShardedConfig {
            remote: RemoteConfig {
                session: Some("tracetree".to_owned()),
                ..RemoteConfig::default()
            },
            ..ShardedConfig::default()
        },
    )
    .expect("connect sharded backend");
    let traced_reports = sharded
        .try_evaluate_batch(&batch)
        .expect("traced sharded batch");
    gcnrl_telemetry::disable_trace();

    assert_eq!(
        traced_reports, reference,
        "tracing on changed a bit of the results"
    );
    let stats = a.stats();
    assert!(stats.peer_queries >= 1, "A never queried its peer");
    assert!(
        stats.peer_fills >= 1,
        "no cross-shard CacheFill pull happened inside the traced batch"
    );

    // Tracing back off: a fresh shard C peered with warm B repeats the
    // cold-pull path without any sink — bit-identity across the toggle.
    let c = open_server();
    let addr_c = c.local_addr().to_string();
    let ring_c = vec![addr_c.clone(), b.local_addr().to_string()];
    c.enable_peering(ring_c.clone(), addr_c.clone());
    let off = ShardedBackend::connect(&[addr_c], BENCHMARK, &node, ShardedConfig::default())
        .expect("connect tracing-off backend");
    let off_reports = off.try_evaluate_batch(&batch).expect("tracing-off batch");
    assert_eq!(
        off_reports, reference,
        "tracing off changed a bit of the results"
    );

    // Reassemble the JSONL: every distributed span of the traced batch
    // shares the deterministic root trace id (session "tracetree", seq 0).
    let text = std::fs::read_to_string(&trace_path).expect("read trace sink");
    let _ = std::fs::remove_file(&trace_path);
    let trace_id = trace_id_for("tracetree", 0);
    let spans: Vec<JsonlSpan> = parse_jsonl_spans(&text)
        .into_iter()
        .filter(|s| s.trace_id == trace_id)
        .collect();
    let ids_of = |name: &str| -> Vec<u64> {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.span_id)
            .collect()
    };
    let parents_of = |name: &str| -> Vec<Option<u64>> {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.parent_id)
            .collect()
    };

    // Exactly one root, no parent.
    let roots = ids_of("sharded.evaluate.ns");
    assert_eq!(roots.len(), 1, "expected one root span, got {spans:#?}");
    assert_eq!(parents_of("sharded.evaluate.ns"), vec![None]);
    let root_id = roots[0];

    // 24 candidates at the default sub-batch of 8 → 3 pipelined RPCs, every
    // one a direct child of the root.
    let rpcs = ids_of("serve.rpc.ns");
    assert_eq!(rpcs.len(), 3, "expected 3 sub-batch RPC spans");
    for parent in parents_of("serve.rpc.ns") {
        assert_eq!(parent, Some(root_id), "rpc span not parented on the root");
    }

    // Server-side segments on shard A parent under the client RPC spans.
    let requests = ids_of("serve.request.ns");
    assert_eq!(requests.len(), 3, "expected one server segment per RPC");
    for parent in parents_of("serve.request.ns") {
        let parent = parent.expect("server segment without a parent");
        assert!(
            rpcs.contains(&parent),
            "server segment parented outside the client RPCs"
        );
    }

    // Peer pulls nest inside A's segments; B's cache-query segments nest
    // inside the pulls — the CacheFill leg of the tree.
    let pulls = ids_of("serve.peer_pull.ns");
    assert!(!pulls.is_empty(), "no peer-pull span recorded");
    for parent in parents_of("serve.peer_pull.ns") {
        let parent = parent.expect("peer pull without a parent");
        assert!(
            requests.contains(&parent),
            "peer pull parented outside the server segments"
        );
    }
    let queries = ids_of("serve.cache_query.ns");
    assert!(!queries.is_empty(), "no peer cache-query span recorded");
    for parent in parents_of("serve.cache_query.ns") {
        let parent = parent.expect("cache query without a parent");
        assert!(
            pulls.contains(&parent),
            "cache query parented outside the peer pulls"
        );
    }

    // Every span of the tree reaches the root by walking parent links.
    for span in &spans {
        let mut cursor = span.parent_id;
        let mut hops = 0;
        while let Some(parent) = cursor {
            cursor = spans
                .iter()
                .find(|s| s.span_id == parent)
                .unwrap_or_else(|| panic!("dangling parent {parent} of {span:?}"))
                .parent_id;
            hops += 1;
            assert!(hops <= 16, "parent chain of {span:?} does not terminate");
        }
    }

    // The in-process flight recorder merged the same tree (all three
    // processes-worth of segments live in this one test process).
    let tree = recent_traces()
        .into_iter()
        .find(|t| t.trace_id == trace_id)
        .expect("flight recorder holds the traced batch");
    for name in [
        "sharded.evaluate.ns",
        "serve.rpc.ns",
        "serve.request.ns",
        "serve.peer_pull.ns",
        "serve.cache_query.ns",
    ] {
        assert!(
            tree.spans.iter().any(|s| s.name == name),
            "flight recorder tree is missing {name}: {tree:#?}"
        );
    }
    let rendered = tree.render();
    assert!(rendered.contains("sharded.evaluate.ns"));

    sharded.goodbye().expect("clean close sharded");
    off.goodbye().expect("clean close off");
    warm.goodbye().expect("clean close b");
    a.shutdown();
    b.shutdown();
    c.shutdown();
}

/// Downlevel clients ride next to v5 unchanged: v4 and v3 frames carry no
/// `trace` key at all, v2 speaks the legacy shapes — all three get the
/// bit-identical reports a v5 client sees.
#[test]
fn v4_v3_and_v2_clients_are_served_unchanged_next_to_v5() {
    let node = TechnologyNode::tsmc180();
    let server = open_server();
    let addr = server.local_addr();
    let batch = distinct_candidates(4);

    // v5 reference.
    let v5 = RemoteBackend::connect(addr, BENCHMARK, &node).expect("connect v5");
    let reference = v5.try_evaluate_batch(&batch).expect("v5 batch");

    // v4 and v3: hand-framed so the EvalBatch JSON provably lacks the
    // `trace` key — exactly what a pre-v5 client emits.
    for version in [PREV_PROTOCOL_VERSION, V3_PROTOCOL_VERSION] {
        let mut stream = TcpStream::connect(addr).expect("connect downlevel");
        let hello = encode_frame(&ClientMsg::Hello(Hello {
            version,
            benchmark: BENCHMARK,
            node: node.clone(),
            session: Some(format!("downlevel-v{version}")),
            weight: None,
        }))
        .expect("encode hello");
        stream.write_all(&hello).expect("send hello");
        let mut reader = FrameReader::new();
        assert!(
            matches!(
                reader
                    .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
                    .expect("welcome"),
                ServerMsg::Welcome(_)
            ),
            "v{version} handshake refused"
        );
        let payload = format!(
            "{{\"EvalBatch\":{{\"id\":7,\"channel\":0,\"params\":{}}}}}",
            serde_json::to_string(&batch).expect("encode params")
        );
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(payload.as_bytes());
        stream.write_all(&frame).expect("send traceless batch");
        match reader
            .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("batch result")
        {
            ServerMsg::BatchResult { id: 7, reports, .. } => {
                assert_eq!(reports, reference, "v{version} reports drifted from v5");
            }
            other => panic!("v{version}: expected BatchResult, got {other:?}"),
        }
    }

    // v2: legacy shapes, strictly one request in flight.
    let mut stream = TcpStream::connect(addr).expect("connect v2");
    write_frame(
        &mut stream,
        &v2::ClientMsg::Hello(Hello {
            version: 2,
            benchmark: BENCHMARK,
            node: node.clone(),
            session: Some("downlevel-v2".to_owned()),
            weight: None,
        }),
    )
    .expect("send v2 hello");
    let mut reader = FrameReader::new();
    assert!(matches!(
        reader
            .read_msg::<v2::ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("v2 welcome"),
        v2::ServerMsg::Welcome(_)
    ));
    write_frame(
        &mut stream,
        &v2::ClientMsg::EvalBatch {
            params: batch.clone(),
        },
    )
    .expect("send v2 batch");
    match reader
        .read_msg::<v2::ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
        .expect("v2 batch result")
    {
        v2::ServerMsg::BatchResult { reports } => {
            assert_eq!(reports, reference, "v2 reports drifted from v5");
        }
        other => panic!("v2: expected BatchResult, got {other:?}"),
    }

    v5.goodbye().expect("clean close v5");
    server.shutdown();
}
