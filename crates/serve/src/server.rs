//! The network evaluation server: a `TcpListener` accept loop mapping each
//! connection 1:1 onto an [`EvalService`] session.
//!
//! ```text
//!   client A ──TCP──┐                ┌── session A ──┐
//!   client B ──TCP──┤  EvalServer    ├── session B ──┤   EvalService(s)
//!   client C ──TCP──┼──accept loop───┼── session C ──┼──(one per benchmark
//!                   │  thread/conn   │               │   + node, shared
//!                   └────────────────┘               │   engine + cache)
//!                                                    └── ServiceRegistry
//! ```
//!
//! Concurrency model: **connection-per-session, thread-per-connection** —
//! the std-only sibling of the process-local service's session handles. A
//! handler thread owns its socket and its session; all cross-connection
//! coordination happens inside the `EvalService` dispatcher, which already
//! provides fair (weighted) rounds, in-flight dedup and one shared cache.
//!
//! Shutdown is a graceful drain: the accept loop stops, every handler
//! finishes its in-flight request, sends `Goodbye` and closes, then the
//! registry drains each service's queue and joins its dispatcher.

use crate::protocol::{
    write_frame, ClientMsg, FrameError, FrameReader, Hello, ServerMsg, Welcome, WireStats,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::registry::{RegistryConfig, ServiceEntryStats, ServiceRegistry};
use gcnrl_exec::SessionHandle;
use serde::Serialize;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of an [`EvalServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Registry (engine template, cache budget split, service dispatcher)
    /// behind the connections.
    pub registry: RegistryConfig,
    /// Per-frame payload cap enforced on received frames.
    pub max_frame_bytes: usize,
    /// How often an idle connection handler wakes to check for shutdown
    /// (the socket read timeout).
    pub poll_interval: Duration,
    /// On shutdown, how long a connection keeps answering requests that were
    /// already in flight before it says Goodbye. The drain ends once three
    /// consecutive poll ticks (3 × `poll_interval`) find nothing pending —
    /// one empty tick cannot distinguish "idle" from "request in transit" —
    /// so per-connection shutdown costs at least that; the grace window only
    /// bounds a client that keeps submitting into the closing server.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            registry: RegistryConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(50),
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// Connection-level counters, serialisable for reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Connections rejected during the handshake (version mismatch,
    /// malformed hello).
    pub connections_rejected: u64,
    /// Per-service statistics of every instantiated registry entry.
    pub services: Vec<ServiceEntryStats>,
}

struct ServerShared {
    registry: ServiceRegistry,
    config: ServerConfig,
    shutdown: AtomicBool,
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    connections_rejected: AtomicU64,
}

/// The evaluation server. Dropping it (or calling [`EvalServer::shutdown`])
/// drains gracefully.
pub struct EvalServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for EvalServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalServer")
            .field("addr", &self.addr)
            .field("registry", &self.shared.registry)
            .finish()
    }
}

impl EvalServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// the accept loop.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            registry: ServiceRegistry::new(config.registry.clone()),
            config,
            shutdown: AtomicBool::new(false),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("gcnrl-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &handlers))
                .expect("spawn gcnrl-serve accept loop")
        };
        Ok(EvalServer {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
            handlers,
        })
    }

    /// The address the server is listening on (with the concrete port when
    /// bound ephemerally).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry of per-benchmark services behind the connections.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.shared.registry
    }

    /// Connection counters plus per-service statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections_total: self.shared.connections_total.load(Ordering::Relaxed),
            connections_active: self.shared.connections_active.load(Ordering::Relaxed),
            connections_rejected: self.shared.connections_rejected.load(Ordering::Relaxed),
            services: self.shared.registry.stats(),
        }
    }

    /// Graceful drain: stops accepting, lets every connection finish its
    /// in-flight request and close, then drains and joins every service
    /// dispatcher. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection; it observes the
        // flag and exits before handling it.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.lock().expect("accept handle lock").take() {
            let _ = accept.join();
        }
        let handlers: Vec<JoinHandle<()>> = self
            .handlers
            .lock()
            .expect("handler list lock")
            .drain(..)
            .collect();
        for handler in handlers {
            let _ = handler.join();
        }
        self.shared.registry.shutdown();
    }
}

impl Drop for EvalServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // the shutdown wake-up (or a late client)
                }
                shared.connections_total.fetch_add(1, Ordering::Relaxed);
                shared.connections_active.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("gcnrl-serve-{peer}"))
                    .spawn(move || {
                        handle_connection(&shared, stream, peer);
                        shared.connections_active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn gcnrl-serve connection handler");
                let mut list = handlers.lock().expect("handler list lock");
                // Reap finished handlers so a long-lived server does not
                // accumulate one zombie handle per past connection.
                list.retain(|h| !h.is_finished());
                list.push(handle);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. EMFILE); keep serving.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Sends `msg`, ignoring transport errors (the peer may already be gone —
/// a mid-batch disconnect must not take the handler down).
fn send(stream: &mut TcpStream, msg: &ServerMsg) {
    let _write = gcnrl_telemetry::span!("serve.frame_write.ns");
    let _ = write_frame(stream, msg);
}

fn handle_connection(shared: &ServerShared, mut stream: TcpStream, peer: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let max = shared.config.max_frame_bytes;
    let mut reader = FrameReader::new();
    // Times the whole handshake — waiting for Hello through sending Welcome
    // (rejected handshakes record at their early return).
    let handshake_span = gcnrl_telemetry::span!("serve.handshake.ns");

    // Handshake: the first frame must be a valid, version-matching Hello.
    let hello: Hello = loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            send(&mut stream, &ServerMsg::Goodbye);
            return;
        }
        match reader.poll::<ClientMsg>(&mut stream, max) {
            Ok(Some(ClientMsg::Hello(hello))) => break hello,
            Ok(Some(other)) => {
                shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut stream,
                    &ServerMsg::Error {
                        message: format!("expected Hello, got {other:?}"),
                    },
                );
                return;
            }
            Ok(None) => continue, // poll tick
            Err(FrameError::Closed | FrameError::Torn { .. }) => return,
            Err(error) => {
                shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut stream,
                    &ServerMsg::Error {
                        message: format!("handshake failed: {error}"),
                    },
                );
                return;
            }
        }
    };
    if hello.version != PROTOCOL_VERSION {
        shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
        send(
            &mut stream,
            &ServerMsg::Error {
                message: format!(
                    "protocol version mismatch: client speaks v{}, server speaks v{}",
                    hello.version, PROTOCOL_VERSION
                ),
            },
        );
        return;
    }

    // Map the connection 1:1 onto a session of the registry's service for
    // the requested (benchmark, node) pair.
    let service = shared.registry.service_for(hello.benchmark, &hello.node);
    let session_name = hello.session.unwrap_or_else(|| peer.to_string());
    let session = service
        .session_named(session_name.clone())
        .with_weight(hello.weight.unwrap_or(1));
    send(
        &mut stream,
        &ServerMsg::Welcome(Welcome {
            version: PROTOCOL_VERSION,
            session: session_name,
            metric_specs: service.engine().metric_specs().to_vec(),
        }),
    );
    drop(handshake_span);

    serve_session(shared, &mut stream, &mut reader, &session);
    // The connection is done: retire the session — its weight entry is
    // pruned and its statistics fold into the service-level closed-session
    // aggregate, so neither dispatcher snapshot nor stats map grows with
    // every connection a long-lived server has ever hosted.
    session.retire();
}

fn serve_session(
    shared: &ServerShared,
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    session: &SessionHandle,
) {
    let max = shared.config.max_frame_bytes;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Graceful drain: a request the client already sent (sitting in
            // the reader buffer, the kernel socket buffer, or still in
            // transit on the link) must still be answered — a synchronous
            // client blocked in its request/reply round trip would otherwise
            // see Goodbye where BatchResult was promised. One empty poll
            // tick cannot distinguish "nothing in flight" from "in transit",
            // so the drain ends only after several consecutive empty ticks;
            // the grace window bounds a client that keeps submitting into
            // the closing server.
            let grace = std::time::Instant::now() + shared.config.drain_grace;
            let mut empty_ticks = 0;
            while std::time::Instant::now() < grace && empty_ticks < 3 {
                match reader.poll::<ClientMsg>(stream, max) {
                    Ok(Some(msg)) => {
                        empty_ticks = 0;
                        if handle_msg(stream, session, msg).is_break() {
                            return;
                        }
                    }
                    Ok(None) => empty_ticks += 1,
                    Err(_) => return,
                }
            }
            send(stream, &ServerMsg::Goodbye);
            return;
        }
        // A poll that completes a frame is recorded as `serve.frame_read.ns`
        // (empty poll ticks are idle time, not read latency, and stay out of
        // the histogram).
        let poll_start = std::time::Instant::now();
        let polled = reader.poll::<ClientMsg>(stream, max);
        if matches!(polled, Ok(Some(_))) {
            static FRAME_READ: std::sync::OnceLock<Arc<gcnrl_telemetry::Histogram>> =
                std::sync::OnceLock::new();
            FRAME_READ
                .get_or_init(|| gcnrl_telemetry::global().histogram("serve.frame_read.ns"))
                .record_duration(poll_start.elapsed());
        }
        let msg = match polled {
            Ok(Some(msg)) => msg,
            Ok(None) => continue, // poll tick
            // Mid-batch (or idle) disconnect: tolerated, session dropped.
            Err(FrameError::Closed | FrameError::Torn { .. }) => return,
            Err(error @ (FrameError::Oversized { .. } | FrameError::Malformed(_))) => {
                send(
                    stream,
                    &ServerMsg::Error {
                        message: error.to_string(),
                    },
                );
                // Oversized frames cannot be skipped (the buffer holds only
                // their prefix); close rather than desynchronise.
                if matches!(error, FrameError::Oversized { .. }) {
                    return;
                }
                continue;
            }
            Err(FrameError::Io(_)) => return,
        };
        if handle_msg(stream, session, msg).is_break() {
            return;
        }
    }
}

/// The name of the first non-finite metric value in `reports`, if any.
fn first_non_finite(reports: &[gcnrl_sim::PerformanceReport]) -> Option<String> {
    reports.iter().find_map(|report| {
        report
            .iter()
            .find(|(_, value)| !value.is_finite())
            .map(|(name, _)| name.to_owned())
    })
}

/// Serves one decoded client message; `Break` means the connection is done.
fn handle_msg(
    stream: &mut TcpStream,
    session: &SessionHandle,
    msg: ClientMsg,
) -> std::ops::ControlFlow<()> {
    match msg {
        ClientMsg::EvalBatch { params } => {
            // Mirror the local SessionHandle contract: an evaluator panic
            // fails this request (reported to this client) while the
            // service keeps serving later ones.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.evaluate_batch(&params)
            }));
            match outcome {
                Ok(reports) => match first_non_finite(&reports) {
                    // JSON cannot carry inf/NaN losslessly (they render as
                    // null); failing the request loudly beats silently
                    // corrupting a value and breaking the bit-exactness the
                    // remote path promises. No current evaluator emits
                    // non-finite metrics, so this is a guard, not a path.
                    None => send(stream, &ServerMsg::BatchResult { reports }),
                    Some(metric) => send(
                        stream,
                        &ServerMsg::Error {
                            message: format!(
                                "metric `{metric}` is non-finite and cannot travel \
                                 losslessly over the JSON wire"
                            ),
                        },
                    ),
                },
                Err(payload) => send(
                    stream,
                    &ServerMsg::Error {
                        message: gcnrl_exec::panic_message(payload.as_ref()),
                    },
                ),
            }
        }
        ClientMsg::Stats => {
            let service = session.service();
            send(
                stream,
                &ServerMsg::Stats(WireStats {
                    engine: service.engine_stats(),
                    session: session.session_stats(),
                    last_batch: service.engine().last_batch(),
                }),
            );
        }
        ClientMsg::Metrics => {
            send(
                stream,
                &ServerMsg::Metrics(gcnrl_telemetry::global().snapshot()),
            );
        }
        ClientMsg::Goodbye => {
            send(stream, &ServerMsg::Goodbye);
            return std::ops::ControlFlow::Break(());
        }
        ClientMsg::Hello(_) => {
            send(
                stream,
                &ServerMsg::Error {
                    message: "duplicate Hello on an established connection".to_owned(),
                },
            );
        }
    }
    std::ops::ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_frame;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
    use gcnrl_exec::EngineConfig;
    use std::io::Write;

    fn test_server() -> EvalServer {
        EvalServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                registry: RegistryConfig {
                    engine: EngineConfig::serial(),
                    ..RegistryConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    }

    fn raw_hello(version: u32) -> ClientMsg {
        ClientMsg::Hello(Hello {
            version,
            benchmark: Benchmark::TwoStageTia,
            node: TechnologyNode::tsmc180(),
            session: Some("raw".to_owned()),
            weight: None,
        })
    }

    fn read_reply(stream: &mut TcpStream) -> ServerMsg {
        let mut reader = FrameReader::new();
        reader
            .read_msg(stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("server reply")
    }

    #[test]
    fn version_mismatch_is_rejected_with_an_error_frame() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION + 7)).expect("send hello");
        match read_reply(&mut stream) {
            ServerMsg::Error { message } => {
                assert!(message.contains("version mismatch"), "{message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        drop(stream);
        // A well-versioned client still connects fine afterwards.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Welcome(_)));
        server.shutdown();
        assert_eq!(server.stats().connections_rejected, 1);
    }

    #[test]
    fn first_message_must_be_hello() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &ClientMsg::Stats).expect("send");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Error { .. }));
        server.shutdown();
    }

    #[test]
    fn mid_batch_disconnects_leave_the_server_healthy() {
        let server = test_server();
        // Client 1 handshakes, starts a batch frame and vanishes mid-frame.
        {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
            assert!(matches!(read_reply(&mut stream), ServerMsg::Welcome(_)));
            // A torn EvalBatch: length prefix promising more than is sent.
            stream.write_all(&1024u32.to_be_bytes()).expect("prefix");
            stream.write_all(b"{\"EvalBatch\"").expect("partial");
            drop(stream); // mid-batch disconnect
        }
        // Client 2 is served normally on the same (still healthy) service.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        let ServerMsg::Welcome(welcome) = read_reply(&mut stream) else {
            panic!("second client rejected");
        };
        assert_eq!(welcome.version, PROTOCOL_VERSION);
        let space = Benchmark::TwoStageTia
            .circuit()
            .design_space(&TechnologyNode::tsmc180());
        write_frame(
            &mut stream,
            &ClientMsg::EvalBatch {
                params: vec![space.nominal()],
            },
        )
        .expect("send batch");
        match read_reply(&mut stream) {
            ServerMsg::BatchResult { reports } => assert_eq!(reports.len(), 1),
            other => panic!("expected BatchResult, got {other:?}"),
        }
        write_frame(&mut stream, &ClientMsg::Goodbye).expect("send goodbye");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Goodbye));
        server.shutdown();
        // Both connections landed on one shared registry service.
        let stats = server.stats();
        assert_eq!(stats.connections_total, 2);
        assert_eq!(stats.connections_active, 0);
        assert_eq!(stats.services.len(), 1);
    }

    #[test]
    fn shutdown_answers_requests_already_in_flight_before_goodbye() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Welcome(_)));
        // Submit a batch and shut the server down while it is in flight: the
        // graceful drain must still answer it with BatchResult (and only
        // then Goodbye), never swallow it.
        let space = Benchmark::TwoStageTia
            .circuit()
            .design_space(&TechnologyNode::tsmc180());
        write_frame(
            &mut stream,
            &ClientMsg::EvalBatch {
                params: vec![space.nominal()],
            },
        )
        .expect("send batch");
        server.shutdown();
        let mut reader = FrameReader::new();
        match reader
            .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("in-flight reply")
        {
            ServerMsg::BatchResult { reports } => assert_eq!(reports.len(), 1),
            other => panic!("in-flight request dropped at shutdown: {other:?}"),
        }
        assert!(matches!(
            reader
                .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
                .expect("goodbye"),
            ServerMsg::Goodbye
        ));
    }

    #[test]
    fn non_finite_metric_values_are_flagged_for_rejection() {
        // JSON renders inf/NaN as null (read back as NaN), so the server
        // fails such batches loudly instead of letting a value silently
        // mutate across the wire.
        let mut bad = gcnrl_sim::PerformanceReport::new();
        bad.set("gain_db", 42.0);
        bad.set("psrr_db", f64::INFINITY);
        assert_eq!(
            first_non_finite(&[gcnrl_sim::PerformanceReport::new(), bad]),
            Some("psrr_db".to_owned())
        );
        let mut fine = gcnrl_sim::PerformanceReport::new();
        fine.set("gain_db", 42.0);
        assert_eq!(first_non_finite(&[fine]), None);
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_accepting() {
        let server = test_server();
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        // A post-shutdown connection is either refused outright or accepted
        // by the OS backlog and never served — a read sees EOF, not Welcome.
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION));
            let mut reader = FrameReader::new();
            assert!(reader
                .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
                .is_err());
        }
    }
}
