//! The network evaluation server: a nonblocking reactor owning every client
//! socket, feeding a small worker pool over the [`ServiceRegistry`].
//!
//! ```text
//!   client A ──TCP──┐                        ┌ worker ┐
//!   client B ──TCP──┤  reactor (poll loop)   ├ worker ┤   EvalService(s)
//!   client C ──TCP──┼─ owns all sockets,  ───┼ worker ┼──(one per benchmark
//!                   │  decodes frames,       └────────┘   + node, shared
//!                   │  submits inline        completions   engine + cache)
//!                   └────────────────────────────────────── ServiceRegistry
//! ```
//!
//! Concurrency model: **one reactor I/O thread, N worker threads**. The
//! reactor does every socket read/write (incremental, `WouldBlock`-tolerant,
//! via [`FrameReader`]/[`FrameWriter`]) and — crucially — submits decoded
//! `EvalBatch` requests onto their [`EvalService`] queue *inline*, so the
//! dispatcher sees the whole pipelined window at once and packs full rounds.
//! Workers only do the blocking part: harvesting resolved batches
//! ([`PendingBatch::try_wait`]), building registry services on handshakes,
//! and serialising response frames off the I/O thread. Completed responses
//! come back through a completion queue plus a loopback wake socket.
//!
//! Protocol v3 connections pipeline freely (responses carry the request
//! `id`, so they may return out of order) and multiplex several logical
//! sessions over one socket (`Open`/`Close` channels). Legacy v2
//! connections are served through the same reactor with a compat shim that
//! processes their requests strictly one at a time, preserving the in-order
//! responses a blocking client relies on.
//!
//! Shutdown is a graceful drain: the listener drops immediately (freeing
//! the port), every connection keeps being served until it has been quiet
//! for a few poll ticks with nothing in flight, then gets `Goodbye` and
//! closes; `drain_grace` bounds a client that keeps submitting. Afterwards
//! the workers drain and the registry joins every dispatcher.

use crate::poll::PollSet;
use crate::protocol::{
    encode_frame, v2, write_frame, ClientMsg, FrameError, FrameReader, FrameWriter, Hello,
    ServerMsg, Welcome, WireStats, ACCEPTED_PROTOCOL_VERSIONS, DEFAULT_MAX_FRAME_BYTES,
    LEGACY_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::registry::{RegistryConfig, ServiceEntryStats, ServiceRegistry};
use crate::sharded::rendezvous_owner;
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{panic_message, CacheKey, PendingBatch, SessionHandle};
use gcnrl_sim::PerformanceReport;
use gcnrl_telemetry::{SpanHandle, TraceContext};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of an [`EvalServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Registry (engine template, cache budget split, service dispatcher)
    /// behind the connections.
    pub registry: RegistryConfig,
    /// Per-frame payload cap enforced on received frames.
    pub max_frame_bytes: usize,
    /// The reactor's poll tick: how long one readiness wait blocks when
    /// nothing is happening (shutdown latency is bounded by it).
    pub poll_interval: Duration,
    /// On shutdown, how long a connection keeps being served before it is
    /// force-closed. Each connection says Goodbye once it has been quiet —
    /// no frames, nothing in flight — for 3 × `poll_interval` (one quiet
    /// tick cannot distinguish "idle" from "request in transit"), so
    /// shutdown costs at least that; the grace window only bounds a client
    /// that keeps submitting into the closing server.
    pub drain_grace: Duration,
    /// Worker threads harvesting resolved batches and serialising
    /// responses. They never run evaluations (the engine has its own pool);
    /// a handful is plenty even at hundreds of connections.
    pub workers: usize,
    /// Per-connection cap on requests in flight; a client exceeding it gets
    /// per-request `Error` frames instead of unbounded server-side state.
    pub max_pipeline: usize,
    /// Admission control: when set, a `Hello` arriving while more than this
    /// many evaluation requests are pending across the registry is rejected
    /// with an `Error{busy}` frame (`GCNRL_SERVE_BACKLOG` in the serve
    /// binary). `None` admits unconditionally.
    pub backlog_limit: Option<u64>,
    /// Latency-keyed admission control: when set, a `Hello` arriving while
    /// the observed dispatch queue-wait p90 (over a sliding window of recent
    /// requests, merged across services) exceeds this limit is rejected with
    /// an `Error{busy}` frame (`GCNRL_SERVE_QUEUE_WAIT_MS` in the serve
    /// binary). [`ServerConfig::backlog_limit`] stays as the hard fallback.
    pub queue_wait_limit: Option<Duration>,
    /// Deadline of one peer `CacheQuery` round trip (connect + request +
    /// response) on the v4 peering path. A peer slower than this is treated
    /// as a miss and the batch simulates locally.
    pub peer_timeout: Duration,
    /// When set, the reactor periodically re-apportions the registry's cache
    /// budget across services by observed demand
    /// (`ServiceRegistry::rebalance_cache`). `None` keeps the static split.
    pub rebalance_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            registry: RegistryConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(50),
            drain_grace: Duration::from_secs(2),
            workers: 4,
            max_pipeline: 1024,
            backlog_limit: None,
            queue_wait_limit: None,
            peer_timeout: Duration::from_millis(500),
            rebalance_interval: None,
        }
    }
}

/// Connection-level counters, serialisable for reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Connections rejected during the handshake (version mismatch,
    /// malformed hello).
    pub connections_rejected: u64,
    /// Handshakes turned away by admission control (backlog over
    /// [`ServerConfig::backlog_limit`] or queue-wait p90 over
    /// [`ServerConfig::queue_wait_limit`]).
    pub admission_rejected: u64,
    /// Peer `CacheQuery` round trips issued on the v4 peering path.
    pub peer_queries: u64,
    /// Cached reports pulled from peers instead of re-simulated.
    pub peer_fills: u64,
    /// Per-service statistics of every instantiated registry entry.
    pub services: Vec<ServiceEntryStats>,
}

/// The shard ring this server peers within (protocol v4): set post-bind via
/// [`EvalServer::enable_peering`] once every shard's concrete address is
/// known. `self_addr` must appear in `peers` spelled identically to how
/// clients spell it, so client routing and server-side ownership agree.
#[derive(Debug, Clone)]
struct PeeringRing {
    peers: Vec<String>,
    self_addr: String,
}

/// One cached outbound link to a peer shard (blocking, timeout-bounded;
/// used by workers only — never the reactor thread).
struct PeerLink {
    stream: TcpStream,
    reader: FrameReader,
}

struct PeerSlot {
    link: Option<PeerLink>,
    next_id: u64,
}

/// Lazily-connected outbound links to peer shards. The pool lock is held
/// only to fetch a per-peer slot; the slot's own lock covers the I/O, so
/// queries to different peers proceed concurrently.
#[derive(Default)]
struct PeerPool {
    links: Mutex<HashMap<String, Arc<Mutex<PeerSlot>>>>,
}

impl PeerPool {
    /// One `CacheQuery` round trip to `addr`. Any transport hiccup drops the
    /// cached link and reports failure — the caller simulates locally; the
    /// next query reconnects.
    fn query(
        &self,
        addr: &str,
        timeout: Duration,
        keys: &[CacheKey],
    ) -> Result<Vec<Option<PerformanceReport>>, ()> {
        let slot = Arc::clone(
            self.links
                .lock()
                .expect("peer pool lock")
                .entry(addr.to_owned())
                .or_insert_with(|| {
                    Arc::new(Mutex::new(PeerSlot {
                        link: None,
                        next_id: 0,
                    }))
                }),
        );
        let mut slot = slot.lock().expect("peer slot lock");
        if slot.link.is_none() {
            let sock = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
                .ok_or(())?;
            let stream = TcpStream::connect_timeout(&sock, timeout).map_err(|_| ())?;
            stream.set_read_timeout(Some(timeout)).map_err(|_| ())?;
            stream.set_write_timeout(Some(timeout)).map_err(|_| ())?;
            let _ = stream.set_nodelay(true);
            slot.link = Some(PeerLink {
                stream,
                reader: FrameReader::new(),
            });
        }
        slot.next_id += 1;
        let id = slot.next_id;
        let link = slot.link.as_mut().expect("link just ensured");
        let sent = write_frame(
            &mut link.stream,
            &ClientMsg::CacheQuery {
                id,
                keys: keys.to_vec(),
                // The pulling shard's peer-pull span (when active) parents
                // the owner's cache-lookup span into the same request tree.
                trace: TraceContext::current(),
            },
        );
        if sent.is_err() {
            slot.link = None;
            return Err(());
        }
        // The peer answers CacheQuery pre-handshake and in order; anything
        // else on this dedicated link means the link is out of sync.
        match link
            .reader
            .read_msg::<ServerMsg>(&mut link.stream, DEFAULT_MAX_FRAME_BYTES)
        {
            Ok(ServerMsg::CacheFill { id: got, hits }) if got == id && hits.len() == keys.len() => {
                Ok(hits)
            }
            _ => {
                slot.link = None;
                Err(())
            }
        }
    }
}

struct ServerShared {
    registry: ServiceRegistry,
    config: ServerConfig,
    shutdown: AtomicBool,
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    connections_rejected: AtomicU64,
    admission_rejected: AtomicU64,
    peer_queries: AtomicU64,
    peer_fills: AtomicU64,
    peering: RwLock<Option<PeeringRing>>,
    peer_pool: PeerPool,
}

/// The labeled `serve.connections{shard=...}` gauge when peering is on.
fn shard_connections_gauge(shared: &ServerShared) -> Option<Arc<gcnrl_telemetry::Gauge>> {
    let ring = shared.peering.read().expect("peering lock").clone()?;
    Some(gcnrl_telemetry::global().gauge(&gcnrl_telemetry::labeled(
        "serve.connections",
        &[("shard", &ring.self_addr)],
    )))
}

/// The evaluation server. Dropping it (or calling [`EvalServer::shutdown`])
/// drains gracefully.
pub struct EvalServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    /// Write end of the reactor's wake socket (a loopback pair): one byte
    /// makes the poll loop spin immediately. Workers hold clones.
    wake: TcpStream,
    reactor: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for EvalServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalServer")
            .field("addr", &self.addr)
            .field("registry", &self.shared.registry)
            .finish()
    }
}

/// A connected loopback pair used as a self-wake channel: anything written
/// to the returned writer makes the reader end poll-readable.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

impl EvalServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// the reactor + worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = wake_pair()?;
        let shared = Arc::new(ServerShared {
            registry: ServiceRegistry::new(config.registry.clone()),
            config,
            shutdown: AtomicBool::new(false),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            peer_queries: AtomicU64::new(0),
            peer_fills: AtomicU64::new(0),
            peering: RwLock::new(None),
            peer_pool: PeerPool::default(),
        });
        let (task_tx, task_rx) = channel::<Task>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let completions: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::new();
        for i in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let task_rx = Arc::clone(&task_rx);
            let completions = Arc::clone(&completions);
            let wake = wake_tx.try_clone()?;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gcnrl-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &task_rx, &completions, &wake))
                    .expect("spawn gcnrl-serve worker"),
            );
        }
        let reactor = {
            let reactor = Reactor {
                shared: Arc::clone(&shared),
                listener: Some(listener),
                wake_rx,
                tasks: task_tx,
                completions,
                conns: Vec::new(),
                next_gen: 0,
                drain: None,
                next_rebalance: shared
                    .config
                    .rebalance_interval
                    .map(|interval| Instant::now() + interval),
                poll: PollSet::new(),
            };
            std::thread::Builder::new()
                .name("gcnrl-serve-reactor".to_owned())
                .spawn(move || reactor.run())
                .expect("spawn gcnrl-serve reactor")
        };
        Ok(EvalServer {
            shared,
            addr,
            wake: wake_tx,
            reactor: Mutex::new(Some(reactor)),
            workers: Mutex::new(workers),
        })
    }

    /// The address the server is listening on (with the concrete port when
    /// bound ephemerally).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry of per-benchmark services behind the connections.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.shared.registry
    }

    /// Connection counters plus per-service statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections_total: self.shared.connections_total.load(Ordering::Relaxed),
            connections_active: self.shared.connections_active.load(Ordering::Relaxed),
            connections_rejected: self.shared.connections_rejected.load(Ordering::Relaxed),
            admission_rejected: self.shared.admission_rejected.load(Ordering::Relaxed),
            peer_queries: self.shared.peer_queries.load(Ordering::Relaxed),
            peer_fills: self.shared.peer_fills.load(Ordering::Relaxed),
            services: self.shared.registry.stats(),
        }
    }

    /// Joins this server into a shard ring (protocol v4 peering): a batch
    /// containing locally-missing candidates owned — by rendezvous hash over
    /// `peers` — by another shard pulls their cached reports from that owner
    /// (`CacheQuery`/`CacheFill`) instead of re-simulating. Call after
    /// `bind` once every shard's concrete address is known; `self_addr` must
    /// appear in `peers` spelled exactly as clients spell it.
    pub fn enable_peering(&self, peers: Vec<String>, self_addr: String) {
        *self.shared.peering.write().expect("peering lock") =
            Some(PeeringRing { peers, self_addr });
    }

    /// Whether this server would currently admit a new session: `Err` with
    /// a reason while draining, or while the same queue-wait/backlog
    /// admission limits that gate `Hello` frames are exceeded. This is what
    /// the `/readyz` endpoint reports (see
    /// [`readiness_check`](Self::readiness_check)).
    ///
    /// # Errors
    ///
    /// The human-readable reason the server is not ready.
    pub fn readiness(&self) -> Result<(), String> {
        readiness_of(&self.shared)
    }

    /// A clonable [`ReadinessCheck`](crate::metrics_http::ReadinessCheck)
    /// over this server's state, for
    /// [`MetricsHttpServer::bind_with`](crate::MetricsHttpServer::bind_with).
    /// The probe holds only the shared server state, so it stays valid (and
    /// reports "draining") across shutdown.
    pub fn readiness_check(&self) -> crate::metrics_http::ReadinessCheck {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || readiness_of(&shared))
    }

    /// Graceful drain: the listener drops (freeing the port), every
    /// connection finishes what is in flight, gets `Goodbye` and closes,
    /// then the workers drain and every service dispatcher joins.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut wake = &self.wake;
        let _ = wake.write(&[1]);
        if let Some(reactor) = self.reactor.lock().expect("reactor handle lock").take() {
            let _ = reactor.join();
        }
        // The reactor dropped the task sender on exit; workers finish the
        // queued tasks and stop.
        let workers: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker handles lock")
            .drain(..)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
        self.shared.registry.shutdown();
    }
}

impl Drop for EvalServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drain- and admission-aware readiness: the `/readyz` answer.
fn readiness_of(shared: &ServerShared) -> Result<(), String> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err("draining: shutdown in progress".to_owned());
    }
    shared
        .registry
        .admission_report(shared.config.queue_wait_limit, shared.config.backlog_limit)
}

/// Work handed from the reactor to the worker pool. Every task carries the
/// connection's slab token + generation so a completion for a
/// since-closed connection is recognised and discarded.
enum Task {
    /// Build (or look up) the registry service for a handshake and open its
    /// channel-0 session.
    Hello {
        token: usize,
        gen: u64,
        hello: Hello,
        peer: SocketAddr,
    },
    /// Open an additional channel (v3 multiplexing).
    Open {
        token: usize,
        gen: u64,
        id: u64,
        channel: u32,
        benchmark: Benchmark,
        node: TechnologyNode,
        session: Option<String>,
        weight: Option<u64>,
        peer: SocketAddr,
    },
    /// Harvest a batch the reactor already submitted to its service.
    Wait {
        token: usize,
        gen: u64,
        version: u32,
        id: u64,
        channel: u32,
        pending: PendingBatch,
        /// The request's `serve.request.ns` server segment (v5 tracing);
        /// finished once the batch resolves.
        segment: Option<SpanHandle>,
    },
    /// An `EvalBatch` whose locally-missing candidates are owned by peer
    /// shards: pull their cached reports (`CacheQuery`) and seed the local
    /// cache before submitting. Blocking peer I/O must not stall the
    /// reactor, so — unlike the inline fast path — the submit happens on a
    /// worker; the completion re-enters the reactor as a [`Task::Wait`].
    Batch {
        token: usize,
        gen: u64,
        version: u32,
        id: u64,
        channel: u32,
        session: SessionHandle,
        params: Vec<ParamVector>,
        /// The request's `serve.request.ns` server segment (v5 tracing);
        /// peer-pull spans nest under it, and it travels on to the
        /// harvesting [`Task::Wait`].
        segment: Option<SpanHandle>,
    },
}

/// A worker's result, applied to the connection by the reactor.
struct Done {
    token: usize,
    gen: u64,
    /// Pre-serialised response frames to queue on the connection.
    frames: Vec<Vec<u8>>,
    /// Successful handshake: the version the connection now speaks.
    set_version: Option<u32>,
    /// The handshake finished (success or failure) — resume reading.
    handshake_done: bool,
    /// A session (and its name) to install under a channel number.
    open: Option<(u32, SessionHandle, String)>,
    /// The `Open` for this channel finished (success or failure) — release
    /// the reservation.
    channel_done: Option<u32>,
    /// One in-flight request (`Open`/`Wait`) completed.
    request_done: bool,
    /// A [`Task::Batch`] submitted its batch after the peer pulls: the
    /// reactor re-dispatches it as a [`Task::Wait`] (the request stays in
    /// flight — `request_done` belongs to the eventual `Wait` completion).
    /// The trailing slot carries the request's trace segment onward.
    wait: Option<(u32, u64, u32, PendingBatch, Option<SpanHandle>)>,
    /// Close the connection once the queued frames flush.
    close: bool,
}

impl Done {
    fn base(token: usize, gen: u64) -> Self {
        Done {
            token,
            gen,
            frames: Vec::new(),
            set_version: None,
            handshake_done: false,
            open: None,
            channel_done: None,
            request_done: false,
            wait: None,
            close: false,
        }
    }
}

/// Serialises an `Error` response in the connection's wire version.
fn error_frame(version: u32, id: Option<u64>, channel: Option<u32>, message: String) -> Vec<u8> {
    let frame = if version == LEGACY_PROTOCOL_VERSION {
        encode_frame(&v2::ServerMsg::Error { message })
    } else {
        encode_frame(&ServerMsg::Error {
            id,
            channel,
            message,
        })
    };
    frame.unwrap_or_default()
}

/// Serialises a `BatchResult` in the connection's wire version.
fn batch_frame(
    version: u32,
    id: u64,
    channel: u32,
    reports: Vec<gcnrl_sim::PerformanceReport>,
) -> Vec<u8> {
    let frame = if version == LEGACY_PROTOCOL_VERSION {
        encode_frame(&v2::ServerMsg::BatchResult { reports })
    } else {
        encode_frame(&ServerMsg::BatchResult {
            id,
            channel,
            reports,
        })
    };
    frame.unwrap_or_default()
}

/// The name of the first non-finite metric value in `reports`, if any.
fn first_non_finite(reports: &[gcnrl_sim::PerformanceReport]) -> Option<String> {
    reports.iter().find_map(|report| {
        report
            .iter()
            .find(|(_, value)| !value.is_finite())
            .map(|(name, _)| name.to_owned())
    })
}

fn worker_loop(
    shared: &ServerShared,
    tasks: &Mutex<Receiver<Task>>,
    completions: &Mutex<Vec<Done>>,
    wake: &TcpStream,
) {
    loop {
        // Take the receiver lock only to pull one task; blocking in recv
        // while holding it would serialise the pool.
        let task = match tasks.lock().expect("worker task lock").try_recv() {
            Ok(task) => Some(task),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
            Err(std::sync::mpsc::TryRecvError::Empty) => None,
        };
        let task = match task {
            Some(task) => task,
            None => {
                // Queue empty: block in recv_timeout under the lock — other
                // idle workers just wait their turn for the lock, and a
                // short timeout keeps them rotating.
                match tasks
                    .lock()
                    .expect("worker task lock")
                    .recv_timeout(Duration::from_millis(20))
                {
                    Ok(task) => task,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        };
        let done = process_task(shared, task);
        completions
            .lock()
            .expect("completion queue lock")
            .push(done);
        // One byte on the wake socket spins the reactor; WouldBlock means
        // bytes are already pending, which wakes it just the same.
        let mut wake = wake;
        let _ = wake.write(&[1]);
    }
}

fn process_task(shared: &ServerShared, task: Task) -> Done {
    match task {
        Task::Hello {
            token,
            gen,
            hello,
            peer,
        } => {
            let version = hello.version;
            let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let service = shared.registry.service_for(hello.benchmark, &hello.node);
                let name = hello.session.clone().unwrap_or_else(|| peer.to_string());
                let session = service
                    .session_named(name.clone())
                    .with_weight(hello.weight.unwrap_or(1));
                let specs = service.engine().metric_specs().to_vec();
                (session, name, specs)
            }));
            let mut done = Done::base(token, gen);
            done.handshake_done = true;
            match built {
                Ok((session, name, specs)) => {
                    done.frames.push(
                        encode_frame(&ServerMsg::Welcome(Welcome {
                            version,
                            session: name.clone(),
                            metric_specs: specs,
                        }))
                        .unwrap_or_default(),
                    );
                    done.set_version = Some(version);
                    done.open = Some((0, session, name));
                }
                Err(payload) => {
                    shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                    done.frames.push(error_frame(
                        version,
                        None,
                        None,
                        format!("handshake failed: {}", panic_message(payload.as_ref())),
                    ));
                    done.close = true;
                }
            }
            done
        }
        Task::Open {
            token,
            gen,
            id,
            channel,
            benchmark,
            node,
            session,
            weight,
            peer,
        } => {
            let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let service = shared.registry.service_for(benchmark, &node);
                let name = session.unwrap_or_else(|| format!("{peer}#{channel}"));
                let handle = service
                    .session_named(name.clone())
                    .with_weight(weight.unwrap_or(1));
                let specs = service.engine().metric_specs().to_vec();
                (handle, name, specs)
            }));
            let mut done = Done::base(token, gen);
            done.channel_done = Some(channel);
            done.request_done = true;
            match built {
                Ok((handle, name, specs)) => {
                    done.frames.push(
                        encode_frame(&ServerMsg::Opened {
                            id,
                            channel,
                            session: name.clone(),
                            metric_specs: specs,
                        })
                        .unwrap_or_default(),
                    );
                    done.open = Some((channel, handle, name));
                }
                Err(payload) => {
                    done.frames.push(error_frame(
                        PROTOCOL_VERSION,
                        Some(id),
                        Some(channel),
                        format!("open failed: {}", panic_message(payload.as_ref())),
                    ));
                }
            }
            done
        }
        Task::Wait {
            token,
            gen,
            version,
            id,
            channel,
            pending,
            mut segment,
        } => {
            let mut done = Done::base(token, gen);
            done.request_done = true;
            let outcome = pending.try_wait();
            // The server segment closes when the batch resolves: its
            // duration covers submit→harvest, and finishing it files the
            // segment with the flight recorder (the parent lives in the
            // client process).
            if let Some(segment) = segment.as_mut() {
                segment.finish();
            }
            let frame = match outcome {
                Ok(reports) => match first_non_finite(&reports) {
                    // JSON cannot carry inf/NaN losslessly (they render as
                    // null); failing the request loudly beats silently
                    // corrupting a value and breaking the bit-exactness the
                    // remote path promises. No current evaluator emits
                    // non-finite metrics, so this is a guard, not a path.
                    None => batch_frame(version, id, channel, reports),
                    Some(metric) => error_frame(
                        version,
                        Some(id),
                        Some(channel),
                        format!(
                            "metric `{metric}` is non-finite and cannot travel \
                             losslessly over the JSON wire"
                        ),
                    ),
                },
                Err(message) => error_frame(version, Some(id), Some(channel), message),
            };
            done.frames.push(frame);
            done
        }
        Task::Batch {
            token,
            gen,
            version,
            id,
            channel,
            session,
            params,
            segment,
        } => {
            let mut done = Done::base(token, gen);
            // Peer pulls run with the request segment's context ambient, so
            // each per-owner `serve.peer_pull.ns` span nests under it (and
            // the owner's cache-query span, carried on the wire, under that).
            let _trace_scope = segment.as_ref().map(SpanHandle::enter);
            let ring = shared.peering.read().expect("peering lock").clone();
            if let Some(ring) = ring {
                let service = session.service();
                let engine = service.engine();
                // Group the locally-missing, peer-owned keys by their owner
                // so each peer gets one round trip; BTreeMap keeps the
                // query order deterministic.
                let mut by_owner: BTreeMap<String, Vec<CacheKey>> = BTreeMap::new();
                for param in &params {
                    let key = engine.cache_key(param);
                    if engine.peek_cached(&key).is_some() {
                        continue;
                    }
                    let owner =
                        rendezvous_owner(key.digest(), ring.peers.iter().map(String::as_str));
                    if let Some(owner) = owner {
                        if owner != ring.self_addr {
                            by_owner.entry(owner.to_owned()).or_default().push(key);
                        }
                    }
                }
                for (owner, keys) in by_owner {
                    shared.peer_queries.fetch_add(1, Ordering::Relaxed);
                    gcnrl_telemetry::global()
                        .counter(&gcnrl_telemetry::labeled(
                            "serve.peer.queries",
                            &[("peer", &owner)],
                        ))
                        .inc();
                    let _pull_span = gcnrl_telemetry::span!("serve.peer_pull.ns");
                    // A failed or timed-out peer is simply a miss: the
                    // candidates simulate locally, bit-identically.
                    let Ok(hits) =
                        shared
                            .peer_pool
                            .query(&owner, shared.config.peer_timeout, &keys)
                    else {
                        continue;
                    };
                    for (key, hit) in keys.into_iter().zip(hits) {
                        if let Some(report) = hit {
                            engine.seed_cache(key, report);
                            shared.peer_fills.fetch_add(1, Ordering::Relaxed);
                            gcnrl_telemetry::global()
                                .counter(&gcnrl_telemetry::labeled(
                                    "serve.peer.fills",
                                    &[("peer", &owner)],
                                ))
                                .inc();
                        }
                    }
                }
            }
            drop(_trace_scope);
            match session.try_submit(params) {
                Ok(pending) => done.wait = Some((version, id, channel, pending, segment)),
                Err(_) => {
                    done.request_done = true;
                    done.frames.push(error_frame(
                        version,
                        Some(id),
                        Some(channel),
                        "the evaluation service has been shut down".to_owned(),
                    ));
                }
            }
            done
        }
    }
}

/// One client socket owned by the reactor.
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    /// Generation stamp distinguishing this connection from a later one
    /// reusing the same slab slot (stale completions are discarded).
    gen: u64,
    reader: FrameReader,
    writer: FrameWriter,
    /// Negotiated protocol version; 0 until the handshake completes.
    version: u32,
    /// A `Hello` is with a worker; reads pause until it returns.
    handshaking: bool,
    /// Open logical sessions by channel number (0 = the handshake session).
    channels: HashMap<u32, SessionHandle>,
    /// Session names by channel number (per-session labeled metrics).
    session_names: HashMap<u32, String>,
    /// Channels with an `Open` in flight (reserved against duplicates).
    pending_channels: HashSet<u32>,
    /// Requests handed to workers and not yet completed.
    in_flight: usize,
    /// Decoded v2 requests awaiting their strictly-serialised turn.
    v2_queue: VecDeque<v2::ClientMsg>,
    /// The client said Goodbye; acknowledge once everything in flight is
    /// answered.
    goodbye_wanted: bool,
    /// Goodbye is queued; stop reading, close after the flush.
    goodbye_queued: bool,
    /// Close once the write buffer drains and nothing is in flight.
    close_after_flush: bool,
    /// The transport failed; close immediately.
    dead: bool,
    /// When the last complete frame arrived (drain quiescence check).
    last_frame: Instant,
    /// When the connection was accepted (handshake latency span).
    opened_at: Instant,
}

impl Conn {
    fn new(stream: TcpStream, peer: SocketAddr, gen: u64) -> Self {
        let now = Instant::now();
        Conn {
            stream,
            peer,
            gen,
            reader: FrameReader::new(),
            writer: FrameWriter::new(),
            version: 0,
            handshaking: false,
            channels: HashMap::new(),
            session_names: HashMap::new(),
            pending_channels: HashSet::new(),
            in_flight: 0,
            v2_queue: VecDeque::new(),
            goodbye_wanted: false,
            goodbye_queued: false,
            close_after_flush: false,
            dead: false,
            last_frame: now,
            opened_at: now,
        }
    }

    fn wants_read(&self) -> bool {
        !self.dead && !self.handshaking && !self.close_after_flush && !self.goodbye_queued
    }

    fn closable(&self) -> bool {
        self.dead
            || (self.close_after_flush
                && self.writer.is_empty()
                && self.in_flight == 0
                && !self.handshaking)
    }

    fn queue_msg<T: Serialize>(&mut self, msg: &T) {
        if let Ok(frame) = encode_frame(msg) {
            self.writer.queue_frame(&frame);
        }
    }

    fn queue_error(&mut self, id: Option<u64>, channel: Option<u32>, message: String) {
        // Pre-handshake errors go out v3-shaped: a v2 client ignores the
        // extra `id`/`channel` keys, a v3 client reads them as None.
        let version = if self.version == 0 {
            PROTOCOL_VERSION
        } else {
            self.version
        };
        let frame = error_frame(version, id, channel, message);
        self.writer.queue_frame(&frame);
    }
}

fn connections_gauge() -> &'static Arc<gcnrl_telemetry::Gauge> {
    static GAUGE: OnceLock<Arc<gcnrl_telemetry::Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| gcnrl_telemetry::global().gauge("serve.connections"))
}

fn pipeline_depth_hist() -> &'static Arc<gcnrl_telemetry::Histogram> {
    static HIST: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| gcnrl_telemetry::global().histogram("serve.pipeline_depth"))
}

/// Records the pipeline depth a submit observed — the global histogram plus
/// the per-session labeled family `serve.pipeline_depth{session=...}`.
fn record_depth(conn: &Conn, channel: u32) {
    let depth = conn.in_flight as u64 + 1;
    pipeline_depth_hist().record(depth);
    if let Some(name) = conn.session_names.get(&channel) {
        gcnrl_telemetry::global()
            .histogram(&gcnrl_telemetry::labeled(
                "serve.pipeline_depth",
                &[("session", name)],
            ))
            .record(depth);
    }
}

fn reactor_wake_hist() -> &'static Arc<gcnrl_telemetry::Histogram> {
    static HIST: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| gcnrl_telemetry::global().histogram("serve.reactor_wake.ns"))
}

fn handshake_hist() -> &'static Arc<gcnrl_telemetry::Histogram> {
    static HIST: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| gcnrl_telemetry::global().histogram("serve.handshake.ns"))
}

fn frame_read_hist() -> &'static Arc<gcnrl_telemetry::Histogram> {
    static HIST: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| gcnrl_telemetry::global().histogram("serve.frame_read.ns"))
}

fn frame_write_hist() -> &'static Arc<gcnrl_telemetry::Histogram> {
    static HIST: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| gcnrl_telemetry::global().histogram("serve.frame_write.ns"))
}

/// Writes as much buffered output as the socket accepts; a transport error
/// kills the connection.
fn flush_conn(conn: &mut Conn) {
    if conn.dead || conn.writer.is_empty() {
        return;
    }
    let started = Instant::now();
    match conn.writer.flush_into(&mut conn.stream) {
        Ok(_) => frame_write_hist().record_duration(started.elapsed()),
        Err(_) => conn.dead = true,
    }
}

struct Reactor {
    shared: Arc<ServerShared>,
    listener: Option<TcpListener>,
    wake_rx: TcpStream,
    tasks: Sender<Task>,
    completions: Arc<Mutex<Vec<Done>>>,
    /// Connection slab; slots are reused, generations disambiguate.
    conns: Vec<Option<Conn>>,
    next_gen: u64,
    /// Set when the drain begins: the force-close deadline.
    drain: Option<Instant>,
    /// Next cache-budget rebalance, when [`ServerConfig::rebalance_interval`]
    /// is set (resolution is the poll tick).
    next_rebalance: Option<Instant>,
    poll: PollSet,
}

impl Reactor {
    fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && self.drain.is_none() {
                self.drain = Some(Instant::now() + self.shared.config.drain_grace);
                // Free the port immediately so a restarted server can bind.
                self.listener = None;
                // Give every connection a fresh quiet window: frames already
                // in the kernel buffer still get read and answered.
                let now = Instant::now();
                for conn in self.conns.iter_mut().flatten() {
                    conn.last_frame = now;
                }
            }
            if let Some(due) = self.next_rebalance {
                if Instant::now() >= due {
                    self.shared.registry.rebalance_cache();
                    let interval = self
                        .shared
                        .config
                        .rebalance_interval
                        .unwrap_or(self.shared.config.poll_interval);
                    self.next_rebalance = Some(Instant::now() + interval);
                }
            }
            let touched = self.apply_completions();
            let had_completions = !touched.is_empty();
            for slot in touched {
                self.pump_read(slot);
            }
            if self.drain.is_some() {
                self.drain_tick();
            }
            self.sweep_closes();
            if self.drain.is_some() && self.conns.iter().all(Option::is_none) {
                return;
            }

            // Register interest: read while the connection accepts frames,
            // write only while output is buffered.
            self.poll.clear();
            let wake_token = self.poll.register(&self.wake_rx, true, false);
            let listener_token = match &self.listener {
                Some(listener) => Some(self.poll.register(listener, true, false)),
                None => None,
            };
            let mut conn_tokens: Vec<(usize, usize)> = Vec::new();
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let read = conn.wants_read();
                let write = !conn.writer.is_empty() && !conn.dead;
                if read || write {
                    conn_tokens.push((slot, self.poll.register(&conn.stream, read, write)));
                }
            }
            let mut timeout = self.shared.config.poll_interval;
            if let Some(deadline) = self.drain {
                timeout = timeout.min(deadline.saturating_duration_since(Instant::now()));
            }
            let _ = self.poll.wait(timeout.max(Duration::from_millis(1)));

            let started = Instant::now();
            let mut worked = had_completions;
            if self.poll.readable(wake_token) {
                worked = true;
                let mut buf = [0u8; 256];
                let mut wake = &self.wake_rx;
                while matches!(wake.read(&mut buf), Ok(n) if n > 0) {}
            }
            if listener_token.is_some_and(|token| self.poll.readable(token)) {
                worked = true;
                self.accept_new();
            }
            let events: Vec<(usize, bool, bool)> = conn_tokens
                .into_iter()
                .map(|(slot, token)| (slot, self.poll.readable(token), self.poll.writable(token)))
                .collect();
            for (slot, readable, writable) in events {
                if writable {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        flush_conn(conn);
                    }
                }
                if readable {
                    self.pump_read(slot);
                }
                worked |= readable || writable;
            }
            if worked {
                reactor_wake_hist().record_duration(started.elapsed());
            }
        }
    }

    fn accept_new(&mut self) {
        let Some(listener) = self.listener.take() else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.shared
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .connections_active
                        .fetch_add(1, Ordering::Relaxed);
                    connections_gauge().inc();
                    if let Some(gauge) = shard_connections_gauge(&self.shared) {
                        gauge.inc();
                    }
                    self.next_gen += 1;
                    let conn = Conn::new(stream, peer, self.next_gen);
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept failure (e.g. EMFILE); keep serving.
                Err(_) => break,
            }
        }
        self.listener = Some(listener);
    }

    /// Applies finished worker results; returns the touched slots (their
    /// buffered frames may now be decodable, and their output needs a
    /// flush).
    fn apply_completions(&mut self) -> Vec<usize> {
        let done_list: Vec<Done> =
            std::mem::take(&mut *self.completions.lock().expect("completion queue lock"));
        let mut touched = Vec::new();
        for done in done_list {
            let conn = self
                .conns
                .get_mut(done.token)
                .and_then(Option::as_mut)
                .filter(|conn| conn.gen == done.gen);
            let Some(conn) = conn else {
                // The connection closed while the worker ran: discard the
                // result, but retire the session it may have opened.
                if let Some((_, session, _)) = done.open {
                    session.retire();
                }
                continue;
            };
            if done.handshake_done {
                conn.handshaking = false;
                handshake_hist().record_duration(conn.opened_at.elapsed());
            }
            if let Some(version) = done.set_version {
                conn.version = version;
            }
            if let Some(channel) = done.channel_done {
                conn.pending_channels.remove(&channel);
            }
            if let Some((channel, session, name)) = done.open {
                conn.session_names.insert(channel, name);
                if let Some(replaced) = conn.channels.insert(channel, session) {
                    replaced.retire();
                }
            }
            if done.request_done {
                conn.in_flight = conn.in_flight.saturating_sub(1);
            }
            if let Some((version, id, channel, pending, segment)) = done.wait {
                // A peer-assisted batch is now submitted: hand the harvest
                // back to the worker pool (the request stays in flight).
                if self
                    .tasks
                    .send(Task::Wait {
                        token: done.token,
                        gen: done.gen,
                        version,
                        id,
                        channel,
                        pending,
                        segment,
                    })
                    .is_err()
                {
                    conn.dead = true;
                }
            }
            for frame in &done.frames {
                conn.writer.queue_frame(frame);
            }
            if done.close {
                conn.close_after_flush = true;
            }
            touched.push(done.token);
        }
        touched
    }

    /// Decodes and dispatches every frame currently available on the
    /// connection (buffered + whatever the socket holds), then flushes.
    fn pump_read(&mut self, slot: usize) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let started = Instant::now();
        let mut frames = 0usize;
        let max = self.shared.config.max_frame_bytes;
        if conn.version == LEGACY_PROTOCOL_VERSION {
            self.pump_v2(slot, &mut conn);
        }
        while conn.wants_read() {
            if conn.version == LEGACY_PROTOCOL_VERSION {
                match conn.reader.poll::<v2::ClientMsg>(&mut conn.stream, max) {
                    Ok(Some(msg)) => {
                        frames += 1;
                        conn.last_frame = Instant::now();
                        if conn.v2_queue.len() >= self.shared.config.max_pipeline {
                            conn.queue_error(
                                None,
                                None,
                                format!(
                                    "pipeline window of {} exceeded",
                                    self.shared.config.max_pipeline
                                ),
                            );
                            conn.close_after_flush = true;
                        } else {
                            conn.v2_queue.push_back(msg);
                            self.pump_v2(slot, &mut conn);
                        }
                    }
                    Ok(None) => break,
                    Err(error) => {
                        if !self.read_error(&mut conn, error) {
                            break;
                        }
                    }
                }
            } else {
                match conn.reader.poll::<ClientMsg>(&mut conn.stream, max) {
                    Ok(Some(msg)) => {
                        frames += 1;
                        conn.last_frame = Instant::now();
                        if conn.version == 0 {
                            self.handle_pre(slot, &mut conn, msg);
                        } else {
                            self.handle_v3(slot, &mut conn, msg);
                        }
                    }
                    Ok(None) => break,
                    Err(error) => {
                        if !self.read_error(&mut conn, error) {
                            break;
                        }
                    }
                }
            }
        }
        if frames > 0 {
            frame_read_hist().record_duration(started.elapsed());
        }
        maybe_goodbye(&mut conn);
        flush_conn(&mut conn);
        self.conns[slot] = Some(conn);
    }

    /// Handles a frame-read failure; returns whether reading may continue.
    fn read_error(&mut self, conn: &mut Conn, error: FrameError) -> bool {
        match error {
            // Mid-batch (or idle) disconnect: tolerated, sessions retired.
            FrameError::Closed | FrameError::Torn { .. } | FrameError::Io(_) => {
                conn.dead = true;
                false
            }
            FrameError::Oversized { .. } => {
                // Oversized frames cannot be skipped (the buffer holds only
                // their prefix); close rather than desynchronise.
                if conn.version == 0 {
                    self.shared
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                }
                conn.queue_error(None, None, error.to_string());
                conn.close_after_flush = true;
                false
            }
            FrameError::Malformed(_) => {
                conn.queue_error(None, None, error.to_string());
                if conn.version == 0 {
                    // A garbage handshake is a rejection; established
                    // connections may continue (the bad frame is consumed).
                    self.shared
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    conn.close_after_flush = true;
                    false
                } else {
                    true
                }
            }
        }
    }

    /// First frame on a connection: must be a version-acceptable `Hello`
    /// (admission control also gates here).
    fn handle_pre(&mut self, slot: usize, conn: &mut Conn, msg: ClientMsg) {
        let hello = match msg {
            ClientMsg::Hello(hello) => hello,
            // Peer shards probe the cache without a handshake (v4 peering):
            // the connection stays pre-handshake (version 0), so a link may
            // carry any number of queries, and admission control does not
            // apply — a peer pull is how a busy shard *avoids* work.
            ClientMsg::CacheQuery { id, keys, trace } => {
                // The lookup span links under the pulling shard's peer-pull
                // span when the query carried a context (v5).
                let mut segment = trace.map(|ctx| SpanHandle::remote("serve.cache_query.ns", ctx));
                let hits = self.shared.registry.peek_cached(&keys);
                if let Some(segment) = segment.as_mut() {
                    segment.finish();
                }
                conn.queue_msg(&ServerMsg::CacheFill { id, hits });
                return;
            }
            other => {
                self.shared
                    .connections_rejected
                    .fetch_add(1, Ordering::Relaxed);
                conn.queue_error(None, None, format!("expected Hello, got {other:?}"));
                conn.close_after_flush = true;
                return;
            }
        };
        if !ACCEPTED_PROTOCOL_VERSIONS.contains(&hello.version) {
            self.shared
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            let accepted = ACCEPTED_PROTOCOL_VERSIONS
                .iter()
                .skip(1)
                .map(|v| format!("v{v}"))
                .collect::<Vec<_>>()
                .join(", ");
            conn.queue_error(
                None,
                None,
                format!(
                    "protocol version mismatch: client speaks v{}, server speaks v{} \
                     ({accepted} still accepted)",
                    hello.version, PROTOCOL_VERSION
                ),
            );
            conn.close_after_flush = true;
            handshake_hist().record_duration(conn.opened_at.elapsed());
            return;
        }
        if let Some(limit) = self.shared.config.queue_wait_limit {
            // Latency-keyed admission: reject while the observed dispatch
            // queue-wait p90 over the recent window exceeds the limit. The
            // backlog count below stays as the hard fallback.
            if let Some(p90) = self.shared.registry.queue_wait_p90() {
                if p90 > limit {
                    self.shared
                        .admission_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    conn.queue_error(
                        None,
                        None,
                        format!(
                            "busy: observed queue-wait p90 of {:.1} ms exceeds the \
                             admission limit of {:.1} ms; retry later",
                            p90.as_secs_f64() * 1e3,
                            limit.as_secs_f64() * 1e3
                        ),
                    );
                    conn.close_after_flush = true;
                    handshake_hist().record_duration(conn.opened_at.elapsed());
                    return;
                }
            }
        }
        if let Some(limit) = self.shared.config.backlog_limit {
            let pending = self.shared.registry.pending_requests();
            if pending > limit {
                self.shared
                    .admission_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let wait_ms = gcnrl_telemetry::global()
                    .histogram("service.queue_wait.ns")
                    .snapshot()
                    .mean()
                    / 1e6;
                conn.queue_error(
                    None,
                    None,
                    format!(
                        "busy: {pending} evaluation requests pending exceed the backlog \
                         limit of {limit} (mean queue wait {wait_ms:.1} ms); retry later"
                    ),
                );
                conn.close_after_flush = true;
                handshake_hist().record_duration(conn.opened_at.elapsed());
                return;
            }
        }
        conn.handshaking = true;
        if self
            .tasks
            .send(Task::Hello {
                token: slot,
                gen: conn.gen,
                hello,
                peer: conn.peer,
            })
            .is_err()
        {
            conn.dead = true;
        }
    }

    /// One decoded v3 frame on an established connection.
    fn handle_v3(&mut self, slot: usize, conn: &mut Conn, msg: ClientMsg) {
        match msg {
            ClientMsg::Hello(_) => {
                conn.queue_error(
                    None,
                    None,
                    "duplicate Hello on an established connection".to_owned(),
                );
            }
            ClientMsg::Open {
                id,
                channel,
                benchmark,
                node,
                session,
                weight,
            } => {
                if conn.channels.contains_key(&channel) || conn.pending_channels.contains(&channel)
                {
                    conn.queue_error(
                        Some(id),
                        Some(channel),
                        format!("channel {channel} is already open"),
                    );
                    return;
                }
                conn.pending_channels.insert(channel);
                conn.in_flight += 1;
                if self
                    .tasks
                    .send(Task::Open {
                        token: slot,
                        gen: conn.gen,
                        id,
                        channel,
                        benchmark,
                        node,
                        session,
                        weight,
                        peer: conn.peer,
                    })
                    .is_err()
                {
                    conn.dead = true;
                }
            }
            ClientMsg::CacheQuery { id, keys, trace } => {
                // Also valid on an established connection: answer from the
                // local caches without touching hit/miss counters.
                let mut segment = trace.map(|ctx| SpanHandle::remote("serve.cache_query.ns", ctx));
                let hits = self.shared.registry.peek_cached(&keys);
                if let Some(segment) = segment.as_mut() {
                    segment.finish();
                }
                conn.queue_msg(&ServerMsg::CacheFill { id, hits });
            }
            ClientMsg::Close { id, channel } => match conn.channels.remove(&channel) {
                Some(session) => {
                    session.retire();
                    conn.session_names.remove(&channel);
                    conn.queue_msg(&ServerMsg::Closed { id, channel });
                }
                None => {
                    conn.queue_error(
                        Some(id),
                        Some(channel),
                        format!("channel {channel} is not open"),
                    );
                }
            },
            ClientMsg::EvalBatch {
                id,
                channel,
                params,
                trace,
            } => {
                let Some(session) = conn.channels.get(&channel) else {
                    conn.queue_error(
                        Some(id),
                        Some(channel),
                        format!("channel {channel} is not open"),
                    );
                    return;
                };
                if conn.in_flight >= self.shared.config.max_pipeline {
                    conn.queue_error(
                        Some(id),
                        Some(channel),
                        format!(
                            "pipeline window of {} exceeded",
                            self.shared.config.max_pipeline
                        ),
                    );
                    return;
                }
                // The server-side segment of the request tree: a remote
                // child of the client's `serve.rpc.ns` span (v5 frames; v4
                // and older carry no context and record no segment).
                let segment = trace.map(|ctx| SpanHandle::remote("serve.request.ns", ctx));
                // Peering divert: when this server is part of a shard ring
                // and the batch contains a locally-missing candidate owned
                // by a peer, the peer pull involves blocking I/O — hand the
                // whole submit to a worker instead of stalling the reactor.
                let ring = self.shared.peering.read().expect("peering lock").clone();
                let divert = ring.is_some_and(|ring| {
                    let service = session.service();
                    let engine = service.engine();
                    params.iter().any(|param| {
                        let key = engine.cache_key(param);
                        engine.peek_cached(&key).is_none()
                            && rendezvous_owner(key.digest(), ring.peers.iter().map(String::as_str))
                                .is_some_and(|owner| owner != ring.self_addr)
                    })
                });
                if divert {
                    let session = session.clone();
                    record_depth(conn, channel);
                    conn.in_flight += 1;
                    if self
                        .tasks
                        .send(Task::Batch {
                            token: slot,
                            gen: conn.gen,
                            version: conn.version,
                            id,
                            channel,
                            session,
                            params,
                            segment,
                        })
                        .is_err()
                    {
                        conn.dead = true;
                    }
                    return;
                }
                // Submit inline so the service dispatcher sees the whole
                // pipelined window and packs full rounds; the worker only
                // harvests the result.
                match session.try_submit(params) {
                    Ok(pending) => {
                        record_depth(conn, channel);
                        conn.in_flight += 1;
                        if self
                            .tasks
                            .send(Task::Wait {
                                token: slot,
                                gen: conn.gen,
                                version: conn.version,
                                id,
                                channel,
                                pending,
                                segment,
                            })
                            .is_err()
                        {
                            conn.dead = true;
                        }
                    }
                    Err(_) => {
                        conn.queue_error(
                            Some(id),
                            Some(channel),
                            "the evaluation service has been shut down".to_owned(),
                        );
                    }
                }
            }
            ClientMsg::Stats { id, channel } => match conn.channels.get(&channel) {
                Some(session) => {
                    let service = session.service();
                    let stats = WireStats {
                        engine: service.engine_stats(),
                        session: session.session_stats(),
                        last_batch: service.engine().last_batch(),
                    };
                    conn.queue_msg(&ServerMsg::Stats { id, channel, stats });
                }
                None => {
                    conn.queue_error(
                        Some(id),
                        Some(channel),
                        format!("channel {channel} is not open"),
                    );
                }
            },
            ClientMsg::Metrics { id } => {
                conn.queue_msg(&ServerMsg::Metrics {
                    id,
                    snapshot: gcnrl_telemetry::global().snapshot(),
                });
            }
            ClientMsg::Goodbye => {
                conn.goodbye_wanted = true;
            }
        }
    }

    /// Serves the v2 compat queue: strictly one request at a time, so the
    /// in-order responses a blocking legacy client relies on are preserved
    /// even with multiple workers completing out of order.
    fn pump_v2(&mut self, slot: usize, conn: &mut Conn) {
        while conn.in_flight == 0 && !conn.goodbye_queued && !conn.goodbye_wanted {
            let Some(msg) = conn.v2_queue.pop_front() else {
                return;
            };
            match msg {
                v2::ClientMsg::Hello(_) => {
                    conn.queue_error(
                        None,
                        None,
                        "duplicate Hello on an established connection".to_owned(),
                    );
                }
                v2::ClientMsg::EvalBatch { params } => {
                    let Some(session) = conn.channels.get(&0) else {
                        conn.queue_error(None, None, "connection has no session".to_owned());
                        continue;
                    };
                    match session.try_submit(params) {
                        Ok(pending) => {
                            record_depth(conn, 0);
                            conn.in_flight = 1;
                            if self
                                .tasks
                                .send(Task::Wait {
                                    token: slot,
                                    gen: conn.gen,
                                    version: LEGACY_PROTOCOL_VERSION,
                                    id: 0,
                                    channel: 0,
                                    pending,
                                    segment: None,
                                })
                                .is_err()
                            {
                                conn.dead = true;
                            }
                        }
                        Err(_) => {
                            conn.queue_error(
                                None,
                                None,
                                "the evaluation service has been shut down".to_owned(),
                            );
                        }
                    }
                }
                v2::ClientMsg::Stats => match conn.channels.get(&0) {
                    Some(session) => {
                        let service = session.service();
                        conn.queue_msg(&v2::ServerMsg::Stats(WireStats {
                            engine: service.engine_stats(),
                            session: session.session_stats(),
                            last_batch: service.engine().last_batch(),
                        }));
                    }
                    None => {
                        conn.queue_error(None, None, "connection has no session".to_owned());
                    }
                },
                v2::ClientMsg::Metrics => {
                    conn.queue_msg(&v2::ServerMsg::Metrics(
                        gcnrl_telemetry::global().snapshot(),
                    ));
                }
                v2::ClientMsg::Goodbye => {
                    conn.goodbye_wanted = true;
                    conn.v2_queue.clear();
                }
            }
        }
    }

    /// During a drain, says Goodbye to quiet connections and force-closes
    /// everything at the deadline.
    fn drain_tick(&mut self) {
        let Some(deadline) = self.drain else { return };
        let now = Instant::now();
        let quiet = self.shared.config.poll_interval * 3;
        for conn in self.conns.iter_mut().flatten() {
            if conn.dead || conn.goodbye_queued {
                if now >= deadline {
                    conn.dead = true;
                }
                continue;
            }
            let idle = conn.in_flight == 0
                && !conn.handshaking
                && conn.writer.is_empty()
                && conn.v2_queue.is_empty()
                && !conn.reader.mid_frame()
                && now.duration_since(conn.last_frame) >= quiet;
            if now >= deadline || idle {
                conn.queue_msg(&ServerMsg::Goodbye);
                conn.goodbye_queued = true;
                conn.close_after_flush = true;
                flush_conn(conn);
                if now >= deadline {
                    conn.dead = true;
                }
            }
        }
    }

    /// Closes every connection that has finished (or died), retiring its
    /// sessions.
    fn sweep_closes(&mut self) {
        for slot in 0..self.conns.len() {
            let done = self.conns[slot]
                .as_ref()
                .is_some_and(|conn| conn.closable());
            if !done {
                continue;
            }
            if let Some(mut conn) = self.conns[slot].take() {
                // The connection is done: retire each channel's session —
                // weight entries are pruned and statistics fold into the
                // service-level closed-session aggregate, so neither
                // dispatcher snapshot nor stats map grows with every
                // connection a long-lived server has ever hosted.
                for (_, session) in conn.channels.drain() {
                    session.retire();
                }
                self.shared
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
                connections_gauge().dec();
                if let Some(gauge) = shard_connections_gauge(&self.shared) {
                    gauge.dec();
                }
            }
        }
    }
}

/// Acknowledges a client `Goodbye` once everything in flight is answered.
fn maybe_goodbye(conn: &mut Conn) {
    if conn.goodbye_wanted && !conn.goodbye_queued && conn.in_flight == 0 {
        conn.queue_msg(&ServerMsg::Goodbye);
        conn.goodbye_queued = true;
        conn.close_after_flush = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_frame;
    use gcnrl_exec::testing::LatencyEvaluator;
    use gcnrl_exec::{BatchEvaluator, EngineConfig, EvalService, ServiceConfig};

    fn test_server() -> EvalServer {
        test_server_with(ServerConfig::default())
    }

    fn test_server_with(mut config: ServerConfig) -> EvalServer {
        config.registry = RegistryConfig {
            engine: EngineConfig::serial(),
            ..RegistryConfig::default()
        };
        EvalServer::bind("127.0.0.1:0", config).expect("bind loopback")
    }

    fn raw_hello(version: u32) -> ClientMsg {
        ClientMsg::Hello(Hello {
            version,
            benchmark: Benchmark::TwoStageTia,
            node: TechnologyNode::tsmc180(),
            session: Some("raw".to_owned()),
            weight: None,
        })
    }

    fn read_reply(stream: &mut TcpStream) -> ServerMsg {
        let mut reader = FrameReader::new();
        reader
            .read_msg(stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("server reply")
    }

    fn nominal() -> gcnrl_circuit::ParamVector {
        Benchmark::TwoStageTia
            .circuit()
            .design_space(&TechnologyNode::tsmc180())
            .nominal()
    }

    fn distinct_candidates(n: usize) -> Vec<ParamVector> {
        let space = Benchmark::TwoStageTia
            .circuit()
            .design_space(&TechnologyNode::tsmc180());
        (0..n)
            .map(|i| {
                let unit: Vec<f64> = (0..space.num_parameters())
                    .map(|j| ((i * 17 + j * 3) % 89) as f64 / 88.0)
                    .collect();
                space.from_unit(&unit)
            })
            .collect()
    }

    #[test]
    fn version_mismatch_is_rejected_with_an_error_frame() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION + 7)).expect("send hello");
        match read_reply(&mut stream) {
            ServerMsg::Error { message, .. } => {
                assert!(message.contains("version mismatch"), "{message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        drop(stream);
        // A well-versioned client still connects fine afterwards.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Welcome(_)));
        server.shutdown();
        assert_eq!(server.stats().connections_rejected, 1);
    }

    #[test]
    fn first_message_must_be_hello() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &ClientMsg::Stats { id: 1, channel: 0 }).expect("send");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Error { .. }));
        server.shutdown();
    }

    #[test]
    fn mid_batch_disconnects_leave_the_server_healthy() {
        let server = test_server();
        // Client 1 handshakes, starts a batch frame and vanishes mid-frame.
        {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
            assert!(matches!(read_reply(&mut stream), ServerMsg::Welcome(_)));
            // A torn EvalBatch: length prefix promising more than is sent.
            stream.write_all(&1024u32.to_be_bytes()).expect("prefix");
            stream.write_all(b"{\"EvalBatch\"").expect("partial");
            drop(stream); // mid-batch disconnect
        }
        // Client 2 is served normally on the same (still healthy) service.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        let ServerMsg::Welcome(welcome) = read_reply(&mut stream) else {
            panic!("second client rejected");
        };
        assert_eq!(welcome.version, PROTOCOL_VERSION);
        write_frame(
            &mut stream,
            &ClientMsg::EvalBatch {
                id: 9,
                channel: 0,
                params: vec![nominal()],
                trace: None,
            },
        )
        .expect("send batch");
        match read_reply(&mut stream) {
            ServerMsg::BatchResult {
                id,
                channel,
                reports,
            } => {
                assert_eq!((id, channel), (9, 0));
                assert_eq!(reports.len(), 1);
            }
            other => panic!("expected BatchResult, got {other:?}"),
        }
        write_frame(&mut stream, &ClientMsg::Goodbye).expect("send goodbye");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Goodbye));
        server.shutdown();
        // Both connections landed on one shared registry service.
        let stats = server.stats();
        assert_eq!(stats.connections_total, 2);
        assert_eq!(stats.connections_active, 0);
        assert_eq!(stats.services.len(), 1);
    }

    #[test]
    fn legacy_v2_clients_ride_the_compat_shim_with_in_order_replies() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // A v2 client may write its whole conversation eagerly; the shim
        // must answer strictly in order.
        write_frame(
            &mut stream,
            &v2::ClientMsg::Hello(Hello {
                version: LEGACY_PROTOCOL_VERSION,
                benchmark: Benchmark::TwoStageTia,
                node: TechnologyNode::tsmc180(),
                session: Some("legacy".to_owned()),
                weight: None,
            }),
        )
        .expect("send hello");
        let params = vec![nominal()];
        write_frame(
            &mut stream,
            &v2::ClientMsg::EvalBatch {
                params: params.clone(),
            },
        )
        .expect("send batch 1");
        write_frame(&mut stream, &v2::ClientMsg::EvalBatch { params }).expect("send batch 2");
        write_frame(&mut stream, &v2::ClientMsg::Stats).expect("send stats");
        write_frame(&mut stream, &v2::ClientMsg::Goodbye).expect("send goodbye");

        let mut reader = FrameReader::new();
        let mut next = || {
            reader
                .read_msg::<v2::ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
                .expect("v2 reply")
        };
        let v2::ServerMsg::Welcome(welcome) = next() else {
            panic!("expected v2 Welcome");
        };
        assert_eq!(welcome.version, LEGACY_PROTOCOL_VERSION);
        let v2::ServerMsg::BatchResult { reports: first } = next() else {
            panic!("expected first BatchResult");
        };
        let v2::ServerMsg::BatchResult { reports: second } = next() else {
            panic!("expected second BatchResult");
        };
        // Identical candidates: the second batch is a cache hit with
        // bit-identical reports.
        assert_eq!(first, second);
        let v2::ServerMsg::Stats(stats) = next() else {
            panic!("expected v2 Stats");
        };
        assert_eq!(stats.session.submitted, 2);
        assert_eq!(stats.session.resolved, 2);
        assert_eq!(stats.engine.simulated, 1);
        assert!(matches!(next(), v2::ServerMsg::Goodbye));
        server.shutdown();
    }

    #[test]
    fn channels_multiplex_sessions_and_responses_carry_request_ids() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Welcome(_)));
        // Open a second logical session (different benchmark) on channel 1.
        write_frame(
            &mut stream,
            &ClientMsg::Open {
                id: 1,
                channel: 1,
                benchmark: Benchmark::Ldo,
                node: TechnologyNode::tsmc180(),
                session: Some("side".to_owned()),
                weight: None,
            },
        )
        .expect("send open");
        match read_reply(&mut stream) {
            ServerMsg::Opened {
                id,
                channel,
                session,
                ..
            } => {
                assert_eq!((id, channel), (1, 1));
                assert_eq!(session, "side");
            }
            other => panic!("expected Opened, got {other:?}"),
        }
        // Duplicate channel numbers are rejected per-request.
        write_frame(
            &mut stream,
            &ClientMsg::Open {
                id: 2,
                channel: 1,
                benchmark: Benchmark::Ldo,
                node: TechnologyNode::tsmc180(),
                session: None,
                weight: None,
            },
        )
        .expect("send duplicate open");
        match read_reply(&mut stream) {
            ServerMsg::Error { id, message, .. } => {
                assert_eq!(id, Some(2));
                assert!(message.contains("already open"), "{message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // Pipeline one batch per channel; responses may come back in any
        // order and are matched by id.
        let ldo = Benchmark::Ldo
            .circuit()
            .design_space(&TechnologyNode::tsmc180())
            .nominal();
        write_frame(
            &mut stream,
            &ClientMsg::EvalBatch {
                id: 3,
                channel: 0,
                params: vec![nominal()],
                trace: None,
            },
        )
        .expect("send tia batch");
        write_frame(
            &mut stream,
            &ClientMsg::EvalBatch {
                id: 4,
                channel: 1,
                params: vec![ldo],
                trace: None,
            },
        )
        .expect("send ldo batch");
        let mut seen = std::collections::BTreeMap::new();
        for _ in 0..2 {
            match read_reply(&mut stream) {
                ServerMsg::BatchResult {
                    id,
                    channel,
                    reports,
                } => {
                    seen.insert(id, (channel, reports.len()));
                }
                other => panic!("expected BatchResult, got {other:?}"),
            }
        }
        assert_eq!(seen.get(&3), Some(&(0, 1)));
        assert_eq!(seen.get(&4), Some(&(1, 1)));
        // Close the side channel, keep using channel 0.
        write_frame(&mut stream, &ClientMsg::Close { id: 5, channel: 1 }).expect("send close");
        assert!(matches!(
            read_reply(&mut stream),
            ServerMsg::Closed { id: 5, channel: 1 }
        ));
        write_frame(&mut stream, &ClientMsg::Stats { id: 6, channel: 0 }).expect("send stats");
        match read_reply(&mut stream) {
            ServerMsg::Stats { id, stats, .. } => {
                assert_eq!(id, 6);
                assert_eq!(stats.session.submitted, 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        write_frame(&mut stream, &ClientMsg::Goodbye).expect("send goodbye");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Goodbye));
        server.shutdown();
        // Two benchmarks → two registry services under one connection.
        assert_eq!(server.stats().services.len(), 2);
    }

    #[test]
    fn shutdown_answers_requests_already_in_flight_before_goodbye() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut stream), ServerMsg::Welcome(_)));
        // Submit a batch and shut the server down while it is in flight: the
        // graceful drain must still answer it with BatchResult (and only
        // then Goodbye), never swallow it.
        write_frame(
            &mut stream,
            &ClientMsg::EvalBatch {
                id: 11,
                channel: 0,
                params: vec![nominal()],
                trace: None,
            },
        )
        .expect("send batch");
        server.shutdown();
        let mut reader = FrameReader::new();
        match reader
            .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("in-flight reply")
        {
            ServerMsg::BatchResult { id, reports, .. } => {
                assert_eq!(id, 11);
                assert_eq!(reports.len(), 1);
            }
            other => panic!("in-flight request dropped at shutdown: {other:?}"),
        }
        assert!(matches!(
            reader
                .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
                .expect("goodbye"),
            ServerMsg::Goodbye
        ));
    }

    #[test]
    fn admission_control_rejects_hellos_past_the_backlog_threshold() {
        let server = test_server_with(ServerConfig {
            backlog_limit: Some(0),
            ..ServerConfig::default()
        });
        // A deterministic slow evaluator keeps one request provably pending
        // while the second handshake arrives.
        let node = TechnologyNode::tsmc180();
        let slow = EvalService::new(
            BatchEvaluator::new(
                Box::new(LatencyEvaluator::new(Duration::from_millis(400))),
                EngineConfig::serial(),
            ),
            ServiceConfig::default(),
        );
        server
            .registry()
            .insert_service(Benchmark::TwoStageTia, &node, slow);

        let mut busy = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut busy, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut busy), ServerMsg::Welcome(_)));
        write_frame(
            &mut busy,
            &ClientMsg::EvalBatch {
                id: 1,
                channel: 0,
                params: vec![nominal()],
                trace: None,
            },
        )
        .expect("send batch");
        // Wait until the request is provably pending in the service queue.
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.registry().pending_requests() == 0 {
            assert!(Instant::now() < deadline, "request never became pending");
            std::thread::sleep(Duration::from_millis(5));
        }

        let mut turned_away = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut turned_away, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        match read_reply(&mut turned_away) {
            ServerMsg::Error { message, .. } => {
                assert!(message.contains("busy"), "{message}");
            }
            other => panic!("expected busy Error, got {other:?}"),
        }
        // The admitted client's batch still resolves.
        match read_reply(&mut busy) {
            ServerMsg::BatchResult { id, .. } => assert_eq!(id, 1),
            other => panic!("expected BatchResult, got {other:?}"),
        }
        assert_eq!(server.stats().admission_rejected, 1);
        server.shutdown();
    }

    #[test]
    fn non_finite_metric_values_are_flagged_for_rejection() {
        // JSON renders inf/NaN as null (read back as NaN), so the server
        // fails such batches loudly instead of letting a value silently
        // mutate across the wire.
        let mut bad = gcnrl_sim::PerformanceReport::new();
        bad.set("gain_db", 42.0);
        bad.set("psrr_db", f64::INFINITY);
        assert_eq!(
            first_non_finite(&[gcnrl_sim::PerformanceReport::new(), bad]),
            Some("psrr_db".to_owned())
        );
        let mut fine = gcnrl_sim::PerformanceReport::new();
        fine.set("gain_db", 42.0);
        assert_eq!(first_non_finite(&[fine]), None);
    }

    #[test]
    fn previous_protocol_v4_and_v3_clients_are_served_unchanged() {
        use crate::protocol::{PREV_PROTOCOL_VERSION, V3_PROTOCOL_VERSION};
        let server = test_server();
        for version in [PREV_PROTOCOL_VERSION, V3_PROTOCOL_VERSION] {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            write_frame(&mut stream, &raw_hello(version)).expect("send hello");
            let ServerMsg::Welcome(welcome) = read_reply(&mut stream) else {
                panic!("v{version} client rejected");
            };
            assert_eq!(welcome.version, version);
            // Hand-frame the batch exactly as a pre-v5 client would: no
            // `trace` key at all.
            let json = format!(
                "{{\"EvalBatch\":{{\"id\":3,\"channel\":0,\"params\":[{}]}}}}",
                serde_json::to_string(&nominal()).expect("serialize params")
            );
            let mut frame = (json.len() as u32).to_be_bytes().to_vec();
            frame.extend_from_slice(json.as_bytes());
            use std::io::Write as _;
            stream.write_all(&frame).expect("send batch");
            match read_reply(&mut stream) {
                ServerMsg::BatchResult { id, reports, .. } => {
                    assert_eq!(id, 3);
                    assert_eq!(reports.len(), 1);
                }
                other => panic!("expected BatchResult, got {other:?}"),
            }
            write_frame(&mut stream, &ClientMsg::Goodbye).expect("send goodbye");
            assert!(matches!(read_reply(&mut stream), ServerMsg::Goodbye));
        }
        server.shutdown();
        assert_eq!(server.stats().connections_rejected, 0);
    }

    #[test]
    fn pre_handshake_cache_queries_answer_from_the_local_cache() {
        let server = test_server();
        let node = TechnologyNode::tsmc180();
        let candidate = nominal();
        // The exact content-addressed key the server's engine uses.
        let key = server
            .registry()
            .service_for(Benchmark::TwoStageTia, &node)
            .engine()
            .cache_key(&candidate);
        // A probe link never handshakes; it may carry any number of queries.
        let mut probe = TcpStream::connect(server.local_addr()).expect("connect probe");
        write_frame(
            &mut probe,
            &ClientMsg::CacheQuery {
                id: 7,
                keys: vec![key.clone()],
                trace: None,
            },
        )
        .expect("send query");
        match read_reply(&mut probe) {
            ServerMsg::CacheFill { id, hits } => {
                assert_eq!(id, 7);
                assert_eq!(hits, vec![None], "nothing cached yet");
            }
            other => panic!("expected CacheFill, got {other:?}"),
        }
        // Evaluate the candidate through a normal connection...
        let mut client = TcpStream::connect(server.local_addr()).expect("connect client");
        write_frame(&mut client, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut client), ServerMsg::Welcome(_)));
        write_frame(
            &mut client,
            &ClientMsg::EvalBatch {
                id: 1,
                channel: 0,
                params: vec![candidate],
                trace: None,
            },
        )
        .expect("send batch");
        let ServerMsg::BatchResult { reports, .. } = read_reply(&mut client) else {
            panic!("expected BatchResult");
        };
        // ...and the same probe link now sees the bit-identical report.
        write_frame(
            &mut probe,
            &ClientMsg::CacheQuery {
                id: 8,
                keys: vec![key],
                trace: None,
            },
        )
        .expect("send second query");
        match read_reply(&mut probe) {
            ServerMsg::CacheFill { id, hits } => {
                assert_eq!(id, 8);
                assert_eq!(hits, vec![Some(reports[0].clone())]);
            }
            other => panic!("expected CacheFill, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn queue_wait_admission_rejects_hellos_once_the_p90_exceeds_the_limit() {
        let server = test_server_with(ServerConfig {
            queue_wait_limit: Some(Duration::ZERO),
            ..ServerConfig::default()
        });
        // No dispatches observed yet: the first client is admitted.
        let mut first = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut first, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        assert!(matches!(read_reply(&mut first), ServerMsg::Welcome(_)));
        // One dispatched batch records a strictly positive queue wait.
        write_frame(
            &mut first,
            &ClientMsg::EvalBatch {
                id: 1,
                channel: 0,
                params: vec![nominal()],
                trace: None,
            },
        )
        .expect("send batch");
        assert!(matches!(
            read_reply(&mut first),
            ServerMsg::BatchResult { .. }
        ));
        // The observed p90 now exceeds the zero limit: the next Hello
        // bounces, while the admitted connection keeps being served.
        let mut second = TcpStream::connect(server.local_addr()).expect("connect");
        write_frame(&mut second, &raw_hello(PROTOCOL_VERSION)).expect("send hello");
        match read_reply(&mut second) {
            ServerMsg::Error { message, .. } => {
                assert!(message.contains("queue-wait"), "{message}");
            }
            other => panic!("expected busy Error, got {other:?}"),
        }
        write_frame(&mut first, &ClientMsg::Stats { id: 2, channel: 0 }).expect("send stats");
        assert!(matches!(read_reply(&mut first), ServerMsg::Stats { .. }));
        assert_eq!(server.stats().admission_rejected, 1);
        server.shutdown();
    }

    #[test]
    fn peer_shards_pull_cached_results_instead_of_resimulating() {
        use crate::client::RemoteBackend;
        let node = TechnologyNode::tsmc180();
        let a = test_server();
        let b = test_server();
        let addr_a = a.local_addr().to_string();
        let addr_b = b.local_addr().to_string();
        let ring = vec![addr_a.clone(), addr_b.clone()];
        a.enable_peering(ring.clone(), addr_a);
        b.enable_peering(ring, addr_b);
        let batch = distinct_candidates(24);
        // Warm shard B with the whole batch: B pulls the A-owned keys from
        // A, misses (A is cold), and simulates everything locally — peering
        // never blocks progress.
        let warm = RemoteBackend::connect(b.local_addr(), Benchmark::TwoStageTia, &node)
            .expect("connect shard b");
        let reference = warm.try_evaluate_batch(&batch).expect("warm batch");
        // Shard A now pulls every B-owned report over CacheQuery/CacheFill
        // instead of re-simulating it.
        let remote = RemoteBackend::connect(a.local_addr(), Benchmark::TwoStageTia, &node)
            .expect("connect shard a");
        let reports = remote.try_evaluate_batch(&batch).expect("peered batch");
        assert_eq!(reports, reference, "peer fills must be bit-identical");
        let stats = a.stats();
        assert!(stats.peer_queries >= 1, "A never queried its peer");
        assert!(stats.peer_fills >= 1, "no cross-shard cache fill happened");
        // Everything pulled from B was not simulated again on A.
        let a_sim = a.stats().services[0].engine.simulated;
        let b_sim = b.stats().services[0].engine.simulated;
        assert_eq!(b_sim, 24);
        assert_eq!(a_sim + stats.peer_fills, 24);
        remote.goodbye().expect("clean close a");
        warm.goodbye().expect("clean close b");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_accepting() {
        let server = test_server();
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        // The listener dropped at drain start: a post-shutdown connection is
        // refused outright, or was accepted by the OS backlog and never
        // served — a read sees EOF/reset, not Welcome.
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = write_frame(&mut stream, &raw_hello(PROTOCOL_VERSION));
            let mut reader = FrameReader::new();
            assert!(reader
                .read_msg::<ServerMsg>(&mut stream, DEFAULT_MAX_FRAME_BYTES)
                .is_err());
        }
    }
}
