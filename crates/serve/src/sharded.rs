//! Horizontally sharded evaluation: a client-side [`EvalBackend`] fanning
//! one batch across several [`EvalServer`](crate::EvalServer) shards.
//!
//! ```text
//!              ┌─ rendezvous hash of the candidate's CacheKey ─┐
//!   evaluate_batch(candidates)                                 │
//!        │   ┌──────────────┬──────────────┬───────────────┐   ▼
//!        └──▶│ shard A      │ shard B      │ shard C       │ owner per
//!            │ sub-batches  │ sub-batches  │ sub-batches   │ candidate
//!            │ (pipelined)  │ (pipelined)  │ (pipelined)   │
//!            └──────┬───────┴──────┬───────┴──────┬────────┘
//!                   └── results reassembled in submission order ──▶
//! ```
//!
//! Routing is **rendezvous (highest-random-weight) hashing** of each
//! candidate's content-addressed [`CacheKey`] digest against the shard
//! address strings: deterministic across runs and across client processes
//! (no coordination, no shared state), and when a shard dies only *its*
//! keys move — the survivors keep their cache locality. The same owner
//! function runs server-side for protocol-v4 peering
//! ([`EvalServer::enable_peering`](crate::EvalServer::enable_peering)), so a
//! shard receiving a re-hashed key after a failover knows which peer to pull
//! the cached result from instead of re-simulating.
//!
//! Evaluators are pure and the wire is bit-exact, so *which* shard computes
//! a candidate never changes its report: a sharded run is bit-identical to
//! a solo run over one server, or to a local engine.

use crate::client::{PendingReply, RemoteBackend, RemoteConfig, ServeError};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{BatchReport, CacheKey, EvalBackend, ExecStats, DEFAULT_QUANTIZE_DIGITS};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use gcnrl_telemetry::{trace_id_for, SpanHandle, TraceContext};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Picks the owner of `digest` among `shards` by rendezvous hashing: each
/// shard is scored with an FNV-1a hash of `(digest, shard)` and the highest
/// score wins (ties broken toward the lexicographically smaller shard, so
/// the choice is total). Every client and server computing this over the
/// same shard list agrees on the owner without any coordination, and
/// removing one shard only moves the keys that shard owned.
pub fn rendezvous_owner<'a>(
    digest: u64,
    shards: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    shards
        .into_iter()
        .map(|shard| {
            let mut hash: u64 = 0xcbf29ce484222325;
            for byte in digest.to_le_bytes().iter().chain(shard.as_bytes()) {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x100000001b3);
            }
            (hash, shard)
        })
        .max_by(|(ha, sa), (hb, sb)| ha.cmp(hb).then(sb.cmp(sa)))
        .map(|(_, shard)| shard)
}

/// Client-side options of a [`ShardedBackend`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedConfig {
    /// Per-shard connection options (session name, pipeline window,
    /// reconnect policy). The pipeline window bounds how many sub-batches
    /// ride each shard's wire concurrently.
    pub remote: RemoteConfig,
    /// Candidates per pipelined sub-batch sent to one shard. Smaller
    /// sub-batches overlap better under the pipeline window; `8` keeps the
    /// framing overhead negligible against simulator latency.
    pub sub_batch: usize,
    /// Significant digits used to quantize candidates into routing keys.
    /// Must match the server engines' quantization so client routing and
    /// server-side peering agree on every key's owner.
    pub quantize_digits: i32,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            remote: RemoteConfig::default(),
            sub_batch: 8,
            quantize_digits: DEFAULT_QUANTIZE_DIGITS,
        }
    }
}

/// Pipelined sub-batches in flight on one shard: each sub-batch's original
/// candidate indices alongside its pending reply.
type InFlight = Vec<(Vec<usize>, PendingReply)>;

/// One shard's connection slot. `None` once the shard has been declared
/// dead (connect failure at startup, or transport failure after the
/// reconnect budget) — its keys re-hash onto the survivors.
struct Shard {
    addr: String,
    backend: Mutex<Option<RemoteBackend>>,
}

/// An [`EvalBackend`] spread over several evaluation servers.
///
/// Every candidate routes to the shard owning its content-addressed cache
/// key ([`rendezvous_owner`]); one `evaluate_batch` call fans out as
/// pipelined per-shard sub-batches and reassembles the reports in
/// submission order. When a shard dies mid-batch its candidates re-hash
/// onto the surviving shards and the batch completes — bit-identical to a
/// run that never touched the dead shard, because evaluators are pure.
pub struct ShardedBackend {
    shards: Vec<Shard>,
    benchmark: Benchmark,
    node: TechnologyNode,
    metric_specs: Vec<MetricSpec>,
    config: ShardedConfig,
    /// Batch counter seeding the deterministic root trace id of each
    /// `evaluate_batch` fan-out.
    trace_seq: AtomicU64,
}

impl std::fmt::Debug for ShardedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBackend")
            .field("benchmark", &self.benchmark)
            .field("node", &self.node.name)
            .field(
                "shards",
                &self.shards.iter().map(|s| &s.addr).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ShardedBackend {
    /// Connects to every shard in `addrs` (the `GCNRL_SERVE_ADDRS` ring,
    /// in order). Shards that refuse the connection are marked dead
    /// immediately — the backend comes up as long as at least one shard
    /// answers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] when every shard is unreachable;
    /// handshake rejections propagate from the first reachable shard.
    pub fn connect(
        addrs: &[String],
        benchmark: Benchmark,
        node: &TechnologyNode,
        config: ShardedConfig,
    ) -> Result<Self, ServeError> {
        if addrs.is_empty() {
            return Err(ServeError::Disconnected(
                "no shard addresses configured (GCNRL_SERVE_ADDRS is empty)".to_owned(),
            ));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        let mut metric_specs: Option<Vec<MetricSpec>> = None;
        let mut last_error: Option<ServeError> = None;
        for (index, addr) in addrs.iter().enumerate() {
            let mut remote = config.remote.clone();
            remote.session = Some(match &config.remote.session {
                Some(name) => format!("{name}@{index}"),
                None => format!("sharded@{index}"),
            });
            match RemoteBackend::connect_with(addr.as_str(), benchmark, node, remote) {
                Ok(backend) => {
                    if metric_specs.is_none() {
                        metric_specs = Some(backend.metric_specs().to_vec());
                    }
                    shards.push(Shard {
                        addr: addr.clone(),
                        backend: Mutex::new(Some(backend)),
                    });
                }
                Err(ServeError::Rejected(message)) => {
                    // A live server refusing the handshake (version clash,
                    // admission) is a configuration error, not a dead shard.
                    return Err(ServeError::Rejected(message));
                }
                Err(error) => {
                    shard_failover_counter(addr).inc();
                    last_error = Some(error);
                    shards.push(Shard {
                        addr: addr.clone(),
                        backend: Mutex::new(None),
                    });
                }
            }
        }
        let Some(metric_specs) = metric_specs else {
            return Err(last_error.unwrap_or_else(|| {
                ServeError::Disconnected("every shard is unreachable".to_owned())
            }));
        };
        Ok(ShardedBackend {
            shards,
            benchmark,
            node: node.clone(),
            metric_specs,
            config,
            trace_seq: AtomicU64::new(0),
        })
    }

    /// Connects using the comma-separated `GCNRL_SERVE_ADDRS` ring.
    ///
    /// # Errors
    ///
    /// As for [`ShardedBackend::connect`]; additionally when the variable is
    /// unset or empty.
    pub fn connect_from_env(
        benchmark: Benchmark,
        node: &TechnologyNode,
        config: ShardedConfig,
    ) -> Result<Self, ServeError> {
        let addrs = addrs_from_env()
            .ok_or_else(|| ServeError::Disconnected("GCNRL_SERVE_ADDRS is not set".to_owned()))?;
        Self::connect(&addrs, benchmark, node, config)
    }

    /// The shard addresses of the ring, in configuration order (dead shards
    /// included — the ring is the hash domain, liveness is separate).
    pub fn shard_addrs(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.addr.clone()).collect()
    }

    /// Addresses of the shards currently considered alive.
    pub fn live_shards(&self) -> Vec<String> {
        self.shards
            .iter()
            .filter(|s| s.backend.lock().expect("shard slot lock").is_some())
            .map(|s| s.addr.clone())
            .collect()
    }

    /// The routing key of one candidate — what [`rendezvous_owner`] hashes.
    pub fn routing_key(&self, params: &ParamVector) -> CacheKey {
        CacheKey::new(
            self.benchmark,
            &self.node.name,
            params,
            self.config.quantize_digits,
        )
    }

    /// The index (into [`ShardedBackend::shard_addrs`]) of the *live* shard
    /// `params` currently routes to, or `None` when every shard is dead.
    pub fn shard_for(&self, params: &ParamVector) -> Option<usize> {
        let live = self.live_shards();
        let digest = self.routing_key(params).digest();
        let owner = rendezvous_owner(digest, live.iter().map(String::as_str))?;
        self.shards.iter().position(|s| s.addr == owner)
    }

    fn mark_dead(&self, addr: &str) {
        for shard in &self.shards {
            if shard.addr == addr {
                let mut slot = shard.backend.lock().expect("shard slot lock");
                if slot.take().is_some() {
                    shard_failover_counter(addr).inc();
                }
            }
        }
    }

    /// Submits `indices` of `params` to the shard at `addr` as pipelined
    /// sub-batches. Returns one pending reply per sub-batch, or `None` when
    /// the shard is (or just became) dead.
    fn submit_to_shard(
        &self,
        addr: &str,
        indices: &[usize],
        params: &[ParamVector],
    ) -> Option<InFlight> {
        let shard = self.shards.iter().find(|s| s.addr == addr)?;
        let slot = shard.backend.lock().expect("shard slot lock");
        let backend = slot.as_ref()?;
        shard_request_counter(addr).add(indices.len() as u64);
        let mut pending = Vec::new();
        for chunk in indices.chunks(self.config.sub_batch.max(1)) {
            let sub: Vec<ParamVector> = chunk.iter().map(|&i| params[i].clone()).collect();
            match backend.submit_batch(&sub) {
                Ok(reply) => pending.push((chunk.to_vec(), reply)),
                Err(_) => {
                    // The submit path only fails once the backend is broken
                    // (reconnects exhausted); everything still pending on
                    // this shard is re-routed by the caller.
                    drop(slot);
                    self.mark_dead(addr);
                    return None;
                }
            }
        }
        Some(pending)
    }

    /// Evaluates `params` across the shard ring, reassembling reports in
    /// submission order. Candidates on a shard that dies mid-batch re-hash
    /// onto the survivors (pulling the v4 peering path on the server side
    /// for anything the dead shard had already cached elsewhere).
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when a server failed the evaluation itself
    /// (an evaluator panic fails identically on every shard);
    /// [`ServeError::Disconnected`] once every shard is dead.
    pub fn try_evaluate_batch(
        &self,
        params: &[ParamVector],
    ) -> Result<Vec<PerformanceReport>, ServeError> {
        // The root of the request tree: every per-shard `serve.rpc.ns` span
        // below (and, over the wire, each shard's server-side segment and
        // its peer pulls) parents under this span, so one fan-out
        // reassembles into a single tree spanning all processes.
        let root = match TraceContext::current() {
            Some(parent) => SpanHandle::child_of("sharded.evaluate.ns", parent),
            None => {
                let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
                let session = self.config.remote.session.as_deref().unwrap_or("sharded");
                SpanHandle::root("sharded.evaluate.ns", trace_id_for(session, seq))
            }
        };
        let _trace_scope = root.enter();
        let mut results: Vec<Option<PerformanceReport>> = vec![None; params.len()];
        let mut todo: Vec<usize> = (0..params.len()).collect();
        while !todo.is_empty() {
            let live = self.live_shards();
            if live.is_empty() {
                return Err(ServeError::Disconnected(
                    "every shard has died; the batch cannot complete".to_owned(),
                ));
            }
            // Route each remaining candidate to its owner among the live
            // shards; BTreeMap keeps the fan-out order deterministic.
            let mut per_shard: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
            for &index in &todo {
                let digest = self.routing_key(&params[index]).digest();
                let owner = rendezvous_owner(digest, live.iter().map(String::as_str))
                    .expect("live shard list is non-empty");
                per_shard.entry(owner).or_default().push(index);
            }
            // Fan out: submit every shard's pipelined sub-batches first,
            // collect afterwards, so the shards overlap each other too.
            let mut in_flight: Vec<(&str, InFlight)> = Vec::new();
            let mut retry: Vec<usize> = Vec::new();
            for (addr, indices) in &per_shard {
                match self.submit_to_shard(addr, indices, params) {
                    Some(pending) => in_flight.push((addr, pending)),
                    None => retry.extend(indices.iter().copied()),
                }
            }
            for (addr, pending) in in_flight {
                let mut shard_died = false;
                for (indices, reply) in pending {
                    if shard_died {
                        retry.extend(indices);
                        continue;
                    }
                    match reply.wait() {
                        Ok(reports) => {
                            for (&index, report) in indices.iter().zip(reports) {
                                results[index] = Some(report);
                            }
                        }
                        Err(ServeError::Rejected(message)) => {
                            // The evaluation itself failed; re-routing would
                            // fail the same way on any shard.
                            return Err(ServeError::Rejected(message));
                        }
                        Err(_) => {
                            // Transport death after the reconnect budget:
                            // declare the shard dead and re-hash its share.
                            self.mark_dead(addr);
                            shard_died = true;
                            retry.extend(indices);
                        }
                    }
                }
            }
            todo = retry;
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every index resolved"))
            .collect())
    }

    /// Says `Goodbye` on every live shard connection.
    ///
    /// # Errors
    ///
    /// The first shard's error, after attempting all of them.
    pub fn goodbye(self) -> Result<(), ServeError> {
        let mut first_error = None;
        for shard in &self.shards {
            let backend = shard.backend.lock().expect("shard slot lock").take();
            if let Some(backend) = backend {
                if let (Err(error), None) = (backend.goodbye(), first_error.as_ref()) {
                    first_error = Some(error);
                }
            }
        }
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

/// Parses the comma-separated `GCNRL_SERVE_ADDRS` shard ring; `None` when
/// unset or empty.
pub fn addrs_from_env() -> Option<Vec<String>> {
    let raw = gcnrl_telemetry::env_string("GCNRL_SERVE_ADDRS")?;
    let addrs: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if addrs.is_empty() {
        None
    } else {
        Some(addrs)
    }
}

fn shard_request_counter(addr: &str) -> std::sync::Arc<gcnrl_telemetry::Counter> {
    gcnrl_telemetry::global().counter(&gcnrl_telemetry::labeled(
        "serve.shard.requests",
        &[("shard", addr)],
    ))
}

fn shard_failover_counter(addr: &str) -> std::sync::Arc<gcnrl_telemetry::Counter> {
    gcnrl_telemetry::global().counter(&gcnrl_telemetry::labeled(
        "serve.shard.failovers",
        &[("shard", addr)],
    ))
}

impl EvalBackend for ShardedBackend {
    fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &self.metric_specs
    }

    /// # Panics
    ///
    /// Panics when a server failed the batch or every shard became
    /// unreachable, mirroring the [`RemoteBackend`] contract. Use
    /// [`ShardedBackend::try_evaluate_batch`] to handle failures.
    fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        match self.try_evaluate_batch(params) {
            Ok(reports) => reports,
            Err(ServeError::Rejected(message)) => {
                panic!("sharded evaluation failed: {message}")
            }
            Err(error) => panic!("sharded evaluation transport failed: {error}"),
        }
    }

    /// Field-wise sum of every live shard's engine statistics — the
    /// aggregate view of the ring (`cache_len` sums too: the ring's total
    /// cached reports).
    fn stats(&self) -> ExecStats {
        let mut merged = ExecStats::default();
        for shard in &self.shards {
            let slot = shard.backend.lock().expect("shard slot lock");
            if let Some(backend) = slot.as_ref() {
                if let Ok(stats) = backend.remote_stats() {
                    let engine = stats.engine;
                    merged.requests += engine.requests;
                    merged.simulated += engine.simulated;
                    merged.cache_hits += engine.cache_hits;
                    merged.evictions += engine.evictions;
                    merged.batches += engine.batches;
                    merged.cache_len += engine.cache_len;
                    merged.wall_seconds += engine.wall_seconds;
                }
            }
        }
        merged
    }

    /// Merged last-batch report across the live shards (counts add, the
    /// widest pool wins), matching `BatchReport::merge` semantics.
    fn last_batch(&self) -> BatchReport {
        let mut merged = BatchReport::default();
        for shard in &self.shards {
            let slot = shard.backend.lock().expect("shard slot lock");
            if let Some(backend) = slot.as_ref() {
                if let Ok(stats) = backend.remote_stats() {
                    let last = stats.last_batch;
                    merged.size += last.size;
                    merged.cache_hits += last.cache_hits;
                    merged.simulated += last.simulated;
                    merged.threads = merged.threads.max(last.threads);
                    merged.wall_seconds += last.wall_seconds;
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rendezvous_owner_is_deterministic_and_total() {
        let shards = ["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"];
        for digest in 0..256u64 {
            let a = rendezvous_owner(digest, shards.iter().copied());
            let b = rendezvous_owner(digest, shards.iter().copied());
            assert_eq!(a, b, "same inputs must route identically");
            // Order of the shard list must not matter (HRW is symmetric).
            let reversed = rendezvous_owner(digest, shards.iter().rev().copied());
            assert_eq!(a, reversed, "shard-list order must not affect routing");
        }
        assert_eq!(rendezvous_owner(1, std::iter::empty()), None);
    }

    #[test]
    fn rendezvous_spreads_keys_and_only_moves_the_dead_shards_share() {
        let shards = ["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"];
        let mut owners = BTreeSet::new();
        let mut moved = 0usize;
        let survivors = [shards[0], shards[2]];
        for digest in 0..512u64 {
            let owner = rendezvous_owner(digest, shards.iter().copied()).expect("owner");
            owners.insert(owner);
            let rerouted = rendezvous_owner(digest, survivors.iter().copied()).expect("owner");
            if owner != shards[1] {
                // Keys not owned by the removed shard must not move — that
                // is the cache-locality property failover relies on.
                assert_eq!(owner, rerouted, "survivor-owned key moved on failover");
            } else {
                moved += 1;
            }
        }
        assert_eq!(owners.len(), shards.len(), "every shard must own keys");
        assert!(moved > 0, "the dead shard owned nothing out of 512 keys?");
    }
}
