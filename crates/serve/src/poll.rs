//! Readiness polling for the reactor: a thin std-only facade over `poll(2)`.
//!
//! The reactor registers every socket it owns (listener, wake pipe, client
//! connections) into a [`PollSet`] each iteration, blocks in one `poll(2)`
//! call until something is readable/writable (or the tick times out), and
//! then asks which registrations fired. On Unix this is the real syscall
//! through a minimal FFI declaration (std already links libc, so no crate is
//! needed); elsewhere it degrades to a short sleep that reports everything
//! ready — correct, because every reactor I/O path tolerates `WouldBlock`,
//! just busier.

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};

/// Sockets the reactor can register for readiness.
pub trait Pollable {
    /// The raw descriptor handed to `poll(2)`.
    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd;
}

impl Pollable for TcpStream {
    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

impl Pollable for TcpListener {
    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_short, c_ulong};

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    /// Mirrors `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

/// One `poll(2)` registration set, rebuilt every reactor iteration (interest
/// changes each tick — write readiness is only requested while a connection
/// has buffered output). Registration order is the token: [`PollSet::register`]
/// returns the index to query after [`PollSet::wait`].
#[derive(Default)]
pub struct PollSet {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
    #[cfg(not(unix))]
    len: usize,
}

impl PollSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PollSet::default()
    }

    /// Drops every registration (readiness results included).
    pub fn clear(&mut self) {
        #[cfg(unix)]
        self.fds.clear();
        #[cfg(not(unix))]
        {
            self.len = 0;
        }
    }

    /// Registers `socket` for read and/or write readiness, returning its
    /// token.
    pub fn register(&mut self, socket: &impl Pollable, read: bool, write: bool) -> usize {
        #[cfg(unix)]
        {
            let mut events = 0;
            if read {
                events |= sys::POLLIN;
            }
            if write {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd: socket.raw_fd(),
                events,
                revents: 0,
            });
            self.fds.len() - 1
        }
        #[cfg(not(unix))]
        {
            let _ = (socket, read, write);
            self.len += 1;
            self.len - 1
        }
    }

    /// Blocks until at least one registration is ready or `timeout` passes,
    /// returning how many registrations fired (0 on timeout or interrupt).
    pub fn wait(&mut self, timeout: Duration) -> std::io::Result<usize> {
        #[cfg(unix)]
        {
            if self.fds.is_empty() {
                std::thread::sleep(timeout.min(Duration::from_millis(50)));
                return Ok(0);
            }
            let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
            // SAFETY: `fds` is a live, correctly-sized buffer of #[repr(C)]
            // pollfd entries, exactly what poll(2) expects; the kernel only
            // writes `revents` within the passed length.
            let ready = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    millis.max(0),
                )
            };
            if ready < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(ready as usize)
        }
        #[cfg(not(unix))]
        {
            // Fallback: a short sleep, then report everything ready. All
            // reactor reads/writes tolerate WouldBlock, so this only costs
            // wake-ups, never correctness.
            std::thread::sleep(timeout.min(Duration::from_millis(2)));
            Ok(self.len)
        }
    }

    /// Whether registration `token` is readable (data, EOF, or a socket
    /// error — all of which a read will surface).
    pub fn readable(&self, token: usize) -> bool {
        #[cfg(unix)]
        {
            self.fds[token].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                != 0
        }
        #[cfg(not(unix))]
        {
            token < self.len
        }
    }

    /// Whether registration `token` is writable (or errored — a write will
    /// surface it).
    pub fn writable(&self, token: usize) -> bool {
        #[cfg(unix)]
        {
            self.fds[token].revents & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                != 0
        }
        #[cfg(not(unix))]
        {
            token < self.len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn read_readiness_follows_data() {
        let (mut a, b) = pair();
        let mut set = PollSet::new();
        let token = set.register(&b, true, false);
        // Nothing written yet: a zero-ish timeout elapses without readiness
        // (the portable fallback reports ready, which is also acceptable to
        // callers — so only assert the strict case on unix).
        set.wait(Duration::from_millis(1)).expect("wait");
        #[cfg(unix)]
        assert!(!set.readable(token));
        a.write_all(b"x").expect("write");
        a.flush().expect("flush");
        let mut ready = false;
        for _ in 0..100 {
            set.clear();
            let token = set.register(&b, true, false);
            set.wait(Duration::from_millis(10)).expect("wait");
            if set.readable(token) {
                ready = true;
                break;
            }
        }
        assert!(ready, "written byte never became readable");
        let _ = token;
    }

    #[test]
    fn write_readiness_is_reported_on_an_open_socket() {
        let (a, _b) = pair();
        let mut set = PollSet::new();
        let token = set.register(&a, false, true);
        set.wait(Duration::from_millis(10)).expect("wait");
        assert!(set.writable(token), "idle socket should accept writes");
    }

    #[test]
    fn empty_sets_time_out_cleanly() {
        let mut set = PollSet::new();
        let started = std::time::Instant::now();
        assert_eq!(set.wait(Duration::from_millis(5)).expect("wait"), 0);
        assert!(started.elapsed() >= Duration::from_millis(4));
    }
}
