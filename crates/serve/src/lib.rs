//! # gcnrl-serve — the network evaluation server and its remote backend
//!
//! PR 4's [`EvalService`](gcnrl_exec::EvalService) multiplexes concurrent
//! optimisation sessions onto one engine + cache, but only inside one
//! process. This crate exposes that session queue over a wire protocol, so
//! remote GCN-RL trainers, baselines and sizing clients share a standalone
//! evaluation service — the evaluate-batch RPC shape the paper's
//! simulator-in-the-loop training implies:
//!
//! ```text
//!   trainer ──┐  RemoteBackend             EvalServer (reactor)
//!   bench   ──┼──(EvalBackend over TCP)──▶ poll loop ────▶ ServiceRegistry
//!   sizing  ──┘  length-prefixed JSON      owns all conns   1 EvalService per
//!                frames, pipelined by      + worker pool    (benchmark, node),
//!                request id (proto v3)     for harvesting   shared cache
//! ```
//!
//! Three layers:
//!
//! * [`protocol`] — length-prefixed JSON frames carrying serde messages.
//!   Protocol v3 tags every request with an `id` (responses may return out
//!   of order → clients pipeline) and an optional `channel` (several logical
//!   sessions multiplex one socket via `Open`/`Close`); v2 blocking clients
//!   remain fully served through a server-side compat shim. Std-only;
//!   floats round-trip bit-exactly.
//! * [`EvalServer`] — a nonblocking reactor owning every client socket on
//!   one I/O thread (incremental reads/writes, `poll(2)` readiness), with a
//!   small worker pool harvesting resolved batches, fronted by the
//!   multi-benchmark [`ServiceRegistry`] (one engine per `(benchmark,
//!   node)` under a global cache-budget split), with graceful
//!   drain-on-shutdown, admission control and per-connection statistics.
//! * [`RemoteBackend`] — a client implementing
//!   [`EvalBackend`](gcnrl_exec::EvalBackend), so `SizingEnv::with_backend`
//!   and `FomConfig::calibrated_with_backend` run unchanged against a remote
//!   server with bit-identical results — now keeping a configurable window
//!   of batches in flight ([`RemoteConfig::pipeline`]) and transparently
//!   reconnecting with bounded backoff ([`ReconnectConfig`]).
//!
//! Observability: every connection's handshake/frame timings feed the
//! process-wide `gcnrl-telemetry` registry; clients can pull the full
//! snapshot over the wire (`ClientMsg::Metrics` →
//! [`RemoteBackend::metrics`]), and [`MetricsHttpServer`] exposes the same
//! registry in Prometheus text format over plain HTTP (wired to
//! `GCNRL_METRICS_ADDR` in the serve binary).

pub mod protocol;

mod client;
mod metrics_http;
mod poll;
mod registry;
mod server;
mod sharded;

pub use client::{ReconnectConfig, RemoteBackend, RemoteConfig, ServeError};
pub use metrics_http::MetricsHttpServer;
pub use metrics_http::ReadinessCheck;
pub use protocol::{
    FrameError, WireStats, ACCEPTED_PROTOCOL_VERSIONS, LEGACY_PROTOCOL_VERSION,
    PREV_PROTOCOL_VERSION, PROTOCOL_VERSION, V3_PROTOCOL_VERSION,
};
pub use registry::{RegistryConfig, ServiceEntryStats, ServiceRegistry};
pub use server::{EvalServer, ServerConfig, ServerStats};
pub use sharded::{addrs_from_env, rendezvous_owner, ShardedBackend, ShardedConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
    use gcnrl_exec::{BatchEvaluator, EngineConfig, EvalBackend};

    fn serial_server() -> EvalServer {
        EvalServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                registry: RegistryConfig {
                    engine: EngineConfig::serial(),
                    ..RegistryConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server")
    }

    fn candidates(benchmark: Benchmark, node: &TechnologyNode, n: usize) -> Vec<ParamVector> {
        let space = benchmark.circuit().design_space(node);
        (0..n)
            .map(|i| {
                let unit: Vec<f64> = (0..space.num_parameters())
                    .map(|j| ((i * 17 + j * 3) % 89) as f64 / 88.0)
                    .collect();
                space.from_unit(&unit)
            })
            .collect()
    }

    #[test]
    fn remote_reports_are_bit_identical_to_a_local_engine() {
        let node = TechnologyNode::tsmc180();
        let batch = candidates(Benchmark::TwoStageTia, &node, 5);
        let local =
            BatchEvaluator::for_benchmark(Benchmark::TwoStageTia, &node, EngineConfig::serial());
        let reference = local.evaluate_batch(&batch);

        let server = serial_server();
        let remote = RemoteBackend::connect(server.local_addr(), Benchmark::TwoStageTia, &node)
            .expect("connect");
        assert_eq!(EvalBackend::benchmark(&remote), Benchmark::TwoStageTia);
        assert_eq!(remote.technology(), &node);
        assert_eq!(remote.metric_specs(), local.metric_specs());
        let reports = EvalBackend::evaluate_batch(&remote, &batch);
        assert_eq!(reports, reference, "the wire must not change a single bit");
        // Empty batches do not round-trip at all.
        assert!(EvalBackend::evaluate_batch(&remote, &[]).is_empty());
        // Engine stats travel back: 5 simulated candidates on the server.
        let stats = EvalBackend::stats(&remote);
        assert_eq!(stats.simulated, 5);
        let last = remote.last_batch();
        assert_eq!(last.size, 5);
        remote.goodbye().expect("clean close");
        server.shutdown();
    }

    #[test]
    fn two_clients_share_one_registry_service_and_its_cache() {
        let node = TechnologyNode::tsmc180();
        let batch = candidates(Benchmark::Ldo, &node, 4);
        let server = serial_server();
        let a = RemoteBackend::connect_with(
            server.local_addr(),
            Benchmark::Ldo,
            &node,
            RemoteConfig {
                session: Some("client-a".to_owned()),
                weight: 2,
                ..RemoteConfig::default()
            },
        )
        .expect("connect a");
        let b = RemoteBackend::connect_with(
            server.local_addr(),
            Benchmark::Ldo,
            &node,
            RemoteConfig {
                session: Some("client-b".to_owned()),
                ..RemoteConfig::default()
            },
        )
        .expect("connect b");
        let ra = EvalBackend::evaluate_batch(&a, &batch);
        let rb = EvalBackend::evaluate_batch(&b, &batch);
        assert_eq!(ra, rb);
        // b's identical batch was served from the shared cache.
        let stats = b.remote_stats().expect("stats");
        assert_eq!(stats.engine.simulated, 4);
        assert_eq!(stats.engine.cache_hits, 4);
        assert_eq!(stats.session.name, "client-b");
        assert_eq!(stats.session.candidates, 4);
        // The Hello weight landed on the server-side session.
        let a_stats = a.remote_stats().expect("stats");
        assert_eq!(a_stats.session.weight, 2);
        assert_eq!(server.registry().len(), 1);
        drop((a, b));
        server.shutdown();
        let server_stats = server.stats();
        assert_eq!(server_stats.connections_total, 2);
        assert_eq!(server_stats.services.len(), 1);
        // Both connections closed, so their sessions folded into the
        // service-level aggregate instead of lingering in the live map.
        let service = &server_stats.services[0];
        assert!(service.sessions.is_empty(), "closed sessions must fold out");
        assert_eq!(service.closed.sessions, 2);
        assert_eq!(service.closed.candidates, 8);
        assert_eq!(service.closed.submitted, service.closed.resolved);
    }

    #[test]
    fn metrics_rpc_returns_a_live_telemetry_snapshot() {
        let node = TechnologyNode::tsmc180();
        let server = serial_server();
        let remote = RemoteBackend::connect(server.local_addr(), Benchmark::TwoStageTia, &node)
            .expect("connect");
        EvalBackend::evaluate_batch(&remote, &candidates(Benchmark::TwoStageTia, &node, 3));
        let snapshot = remote.metrics().expect("metrics over the wire");
        // The batch above must have left nonzero counts in every layer the
        // request traversed: serve framing, service dispatch, engine, solver.
        for name in [
            "serve.handshake.ns",
            "serve.frame_read.ns",
            "serve.frame_write.ns",
            "service.round_assemble.ns",
            "service.queue_wait.ns",
            "exec.batch.ns",
            "exec.simulate.ns",
            "sim.factor.ns",
            "sim.solve.ns",
        ] {
            let hist = snapshot
                .histogram(name)
                .unwrap_or_else(|| panic!("histogram {name} missing from the snapshot"));
            assert!(hist.count >= 1, "{name} recorded nothing");
            assert!(hist.sum > 0, "{name} has zero total duration");
        }
        // The same snapshot renders as Prometheus text on the client side.
        let prom = snapshot.render_prometheus();
        assert!(prom.contains("serve_handshake_ns_count"), "{prom}");
        assert!(prom.contains("exec_batch_ns_bucket"), "{prom}");
        remote.goodbye().expect("clean close");
        server.shutdown();
    }

    #[test]
    fn different_benchmarks_get_their_own_service_under_one_facade() {
        let node = TechnologyNode::tsmc180();
        let server = serial_server();
        let tia = RemoteBackend::connect(server.local_addr(), Benchmark::TwoStageTia, &node)
            .expect("connect tia");
        let ldo = RemoteBackend::connect(server.local_addr(), Benchmark::Ldo, &node)
            .expect("connect ldo");
        EvalBackend::evaluate_batch(&tia, &candidates(Benchmark::TwoStageTia, &node, 2));
        EvalBackend::evaluate_batch(&ldo, &candidates(Benchmark::Ldo, &node, 3));
        assert_eq!(server.registry().len(), 2);
        let share = server.registry().config().cache_share();
        assert!(share >= 1);
        drop((tia, ldo));
        server.shutdown();
        let mut simulated: Vec<u64> = server
            .stats()
            .services
            .iter()
            .map(|s| s.engine.simulated)
            .collect();
        simulated.sort_unstable();
        assert_eq!(simulated, vec![2, 3]);
    }

    #[test]
    fn sharded_backend_routes_deterministically_and_survives_a_killed_shard() {
        let node = TechnologyNode::tsmc180();
        let batch = candidates(Benchmark::TwoStageTia, &node, 12);
        // The solo local reference every sharded run must match bit-for-bit.
        let local =
            BatchEvaluator::for_benchmark(Benchmark::TwoStageTia, &node, EngineConfig::serial());
        let reference = local.evaluate_batch(&batch);

        let mut servers: Vec<EvalServer> = (0..3).map(|_| serial_server()).collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let sharded = ShardedBackend::connect(
            &addrs,
            Benchmark::TwoStageTia,
            &node,
            ShardedConfig::default(),
        )
        .expect("connect ring");
        assert_eq!(sharded.live_shards(), addrs);
        // Routing is a pure function of the candidate: stable across calls.
        for params in &batch {
            assert_eq!(sharded.shard_for(params), sharded.shard_for(params));
        }
        let first = sharded.try_evaluate_batch(&batch).expect("first pass");
        assert_eq!(first, reference, "sharded run diverged from local");

        // Kill one of the three shards; its keys re-hash onto the survivors
        // and the batch must still complete, bit-identically.
        let victim = servers.remove(1);
        victim.shutdown();
        drop(victim);
        let second = sharded.try_evaluate_batch(&batch).expect("post-kill pass");
        assert_eq!(second, reference, "failover changed evaluation results");
        assert_eq!(sharded.live_shards().len(), 2, "dead shard not marked");
        // Survivor-owned keys did not move: a third pass is all cache hits.
        let hits_before = EvalBackend::stats(&sharded).cache_hits;
        let third = sharded.try_evaluate_batch(&batch).expect("warm pass");
        assert_eq!(third, reference);
        assert!(EvalBackend::stats(&sharded).cache_hits > hits_before);
        sharded.goodbye().expect("clean close");
        for server in servers {
            server.shutdown();
        }
    }

    #[test]
    fn graceful_shutdown_drains_active_sessions() {
        let node = TechnologyNode::tsmc180();
        let server = serial_server();
        let remote = RemoteBackend::connect(server.local_addr(), Benchmark::TwoStageTia, &node)
            .expect("connect");
        EvalBackend::evaluate_batch(&remote, &candidates(Benchmark::TwoStageTia, &node, 3));
        server.shutdown();
        // Every submitted request resolved before the drain completed (the
        // drained connections have retired into the closed aggregate).
        for service in server.stats().services {
            assert!(service.sessions.is_empty());
            assert_eq!(service.closed.submitted, service.closed.resolved);
        }
        // The torn-down server refuses further batches with an error (the
        // EvalBackend wrapper would panic; the try_ variant reports it).
        assert!(remote
            .try_evaluate_batch(&candidates(Benchmark::TwoStageTia, &node, 1))
            .is_err());
    }
}
