//! The wire protocol: length-prefixed JSON frames carrying serde messages.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//!   ┌──────────────┬──────────────────────────────┐
//!   │ length: u32  │ payload: `length` JSON bytes │
//!   │ (big-endian) │ (one serialised message)     │
//!   └──────────────┴──────────────────────────────┘
//! ```
//!
//! JSON (through the workspace's serde stack) keeps the protocol inspectable
//! with `nc`/`tcpdump` and — crucially — **bit-exact**: the local
//! `serde_json` prints floats with shortest round-trip formatting, so a
//! [`PerformanceReport`] deserialised on the client is bit-identical to the
//! one the server's engine produced. That is what lets a
//! [`RemoteBackend`](crate::RemoteBackend) reproduce local runs exactly.
//!
//! A connection opens with a versioned handshake ([`Hello`] →
//! [`ServerMsg::Welcome`] or [`ServerMsg::Error`]), then any number of
//! [`ClientMsg::EvalBatch`] / [`ClientMsg::Stats`] exchanges, and closes
//! with `Goodbye` (or by dropping the socket — the server tolerates
//! mid-batch disconnects).

use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{BatchReport, ExecStats, SessionStats};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use gcnrl_telemetry::RegistrySnapshot;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Version of the wire protocol; bumped on incompatible message changes.
/// The handshake rejects clients speaking a different version.
///
/// v2: [`BatchReport`] rides the wire directly (it now serialises with
/// `wall_seconds`, replacing the old `WireBatchReport` shim) and the
/// `Metrics` exchange returns the server's full telemetry snapshot.
pub const PROTOCOL_VERSION: u32 = 2;

/// Default cap on one frame's payload size (32 MiB). A `u32` length prefix
/// could announce 4 GiB; the cap keeps a corrupt or hostile peer from making
/// the receiver allocate it.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 << 20;

/// The handshake a client opens its connection with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Client protocol version; must equal [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Benchmark the session evaluates (selects the registry service).
    pub benchmark: Benchmark,
    /// Technology node of the evaluator.
    pub node: TechnologyNode,
    /// Optional session name (shown in server-side [`SessionStats`]);
    /// defaults to the peer address.
    pub session: Option<String>,
    /// Optional fair-share weight mapped onto
    /// [`SessionHandle::with_weight`](gcnrl_exec::SessionHandle::with_weight).
    pub weight: Option<u64>,
}

/// The server's answer to a valid [`Hello`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Welcome {
    /// Server protocol version (equals the client's, or the handshake would
    /// have failed with [`ServerMsg::Error`]).
    pub version: u32,
    /// The session name the server registered for this connection.
    pub session: String,
    /// Metric descriptions of the evaluator behind the session, in evaluator
    /// order — what [`EvalBackend::metric_specs`](gcnrl_exec::EvalBackend)
    /// reports on the client side.
    pub metric_specs: Vec<MetricSpec>,
}

/// The statistics bundle answering [`ClientMsg::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireStats {
    /// Cumulative statistics of the shared engine serving the session — the
    /// merged view where cross-client cache hits show up.
    pub engine: ExecStats,
    /// This connection's session accounting.
    pub session: SessionStats,
    /// The engine's most recent batch ([`BatchReport`] serialises directly
    /// since protocol v2 — wall time as `wall_seconds`).
    pub last_batch: BatchReport,
}

/// Messages a client sends.
///
/// (Variant sizes are deliberately uneven — `Hello` inlines the technology
/// node. Wire messages are transient, one-per-exchange values, so the
/// `large_enum_variant` size concern does not apply.)
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Handshake; must be the first message on the connection.
    Hello(Hello),
    /// Evaluate a batch of candidates through the connection's session.
    EvalBatch {
        /// Candidate sizings, evaluated in order.
        params: Vec<ParamVector>,
    },
    /// Request the session/engine statistics.
    Stats,
    /// Request the server's full telemetry snapshot (every counter, gauge
    /// and latency histogram of the process).
    Metrics,
    /// Close the connection cleanly.
    Goodbye,
}

/// Messages the server sends.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Successful handshake.
    Welcome(Welcome),
    /// Reports for one [`ClientMsg::EvalBatch`], in request order.
    BatchResult {
        /// One report per requested candidate.
        reports: Vec<PerformanceReport>,
    },
    /// Statistics answering [`ClientMsg::Stats`].
    Stats(WireStats),
    /// Telemetry snapshot answering [`ClientMsg::Metrics`].
    Metrics(RegistrySnapshot),
    /// The request failed (handshake rejection, evaluator panic, malformed
    /// message). The connection stays open unless the handshake failed.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Acknowledges a client `Goodbye`; sent before the server closes.
    Goodbye,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The peer closed the connection mid-frame (torn frame).
    Torn {
        /// Bytes of the incomplete frame that did arrive.
        buffered: usize,
    },
    /// The length prefix exceeds the configured cap.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload is not valid JSON for the expected message type.
    Malformed(String),
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Torn { buffered } => {
                write!(f, "connection closed mid-frame ({buffered} bytes buffered)")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serialises `msg` as one frame onto `writer` and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error (e.g. when the peer disconnected).
pub fn write_frame<T: Serialize>(writer: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// An incremental frame decoder that survives read timeouts: bytes
/// accumulate in an internal buffer across [`FrameReader::poll`] calls, so a
/// timeout landing in the middle of a frame loses nothing. The server uses
/// this to stay responsive to shutdown while a connection idles.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether a partial frame is currently buffered.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to complete one frame: parses the buffer if a full frame is
    /// already present, otherwise performs **one** `read` on `reader` (which
    /// blocks up to the stream's read timeout) and retries. Returns
    /// `Ok(None)` when the read timed out before a frame completed — the
    /// caller decides whether to keep polling.
    ///
    /// # Errors
    ///
    /// [`FrameError::Closed`] on EOF at a frame boundary, [`FrameError::Torn`]
    /// on EOF mid-frame, and the other variants as described on
    /// [`FrameError`].
    pub fn poll<T: for<'de> Deserialize<'de>>(
        &mut self,
        reader: &mut impl Read,
        max_frame_bytes: usize,
    ) -> Result<Option<T>, FrameError> {
        loop {
            if let Some(msg) = self.try_decode(max_frame_bytes)? {
                return Ok(Some(msg));
            }
            let mut chunk = [0u8; 8192];
            match reader.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::Closed
                    } else {
                        FrameError::Torn {
                            buffered: self.buf.len(),
                        }
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Blocks until a whole frame arrives (for streams without a read
    /// timeout, where [`FrameReader::poll`] never returns `Ok(None)`).
    ///
    /// # Errors
    ///
    /// As for [`FrameReader::poll`]; additionally treats a timeout on a
    /// timeout-configured stream as an I/O error, since "blocking" read was
    /// requested.
    pub fn read_msg<T: for<'de> Deserialize<'de>>(
        &mut self,
        reader: &mut impl Read,
        max_frame_bytes: usize,
    ) -> Result<T, FrameError> {
        match self.poll(reader, max_frame_bytes)? {
            Some(msg) => Ok(msg),
            None => Err(FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "read timed out waiting for a frame",
            ))),
        }
    }

    /// Parses one frame out of the buffer if it is complete.
    fn try_decode<T: for<'de> Deserialize<'de>>(
        &mut self,
        max_frame_bytes: usize,
    ) -> Result<Option<T>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > max_frame_bytes {
            return Err(FrameError::Oversized {
                len,
                max: max_frame_bytes,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = std::str::from_utf8(&self.buf[4..4 + len])
            .map_err(|e| FrameError::Malformed(e.to_string()))?;
        let msg =
            serde_json::from_str::<T>(payload).map_err(|e| FrameError::Malformed(e.to_string()));
        self.buf.drain(..4 + len);
        msg.map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::ComponentParams;

    fn hello() -> ClientMsg {
        ClientMsg::Hello(Hello {
            version: PROTOCOL_VERSION,
            benchmark: Benchmark::TwoStageTia,
            node: TechnologyNode::tsmc180(),
            session: Some("test".to_owned()),
            weight: Some(2),
        })
    }

    fn frame_bytes<T: Serialize>(msg: &T) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, msg).expect("write to vec");
        out
    }

    #[test]
    fn messages_round_trip_through_frames() {
        let msgs = vec![
            hello(),
            ClientMsg::EvalBatch {
                params: vec![ParamVector::new(vec![ComponentParams::Resistance(1.25)])],
            },
            ClientMsg::Stats,
            ClientMsg::Goodbye,
        ];
        let mut wire = Vec::new();
        for msg in &msgs {
            write_frame(&mut wire, msg).expect("write");
        }
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        for msg in &msgs {
            let back: ClientMsg = reader
                .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
                .expect("read");
            assert_eq!(&back, msg);
        }
        assert!(matches!(
            reader.read_msg::<ClientMsg>(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn reports_round_trip_bit_exactly() {
        let mut report = PerformanceReport::new();
        report.set("gain_db", 1.0 / 3.0);
        report.set("bw_hz", 2.5e9 * (1.0 + f64::EPSILON));
        report.set("noise", -1e-300);
        let msg = ServerMsg::BatchResult {
            reports: vec![report.clone()],
        };
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&msg));
        let back: ServerMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        let ServerMsg::BatchResult { reports } = back else {
            panic!("wrong variant");
        };
        assert_eq!(reports[0], report);
        for (name, value) in report.iter() {
            assert_eq!(
                reports[0].get(name).unwrap().to_bits(),
                value.to_bits(),
                "{name} drifted through the wire"
            );
        }
    }

    #[test]
    fn torn_frames_are_reported_distinctly_from_clean_eof() {
        let full = frame_bytes(&hello());
        for cut in [1usize, 3, 4, full.len() - 1] {
            let mut reader = FrameReader::new();
            let mut cursor = std::io::Cursor::new(full[..cut].to_vec());
            match reader.read_msg::<ClientMsg>(&mut cursor, DEFAULT_MAX_FRAME_BYTES) {
                Err(FrameError::Torn { buffered }) => assert_eq!(buffered, cut),
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn frames_split_across_reads_reassemble() {
        // A reader fed one byte at a time (worst-case fragmentation) still
        // decodes the frame — the buffer accumulates across short reads.
        struct OneByte(std::io::Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut reader = FrameReader::new();
        let mut stream = OneByte(std::io::Cursor::new(frame_bytes(&hello())));
        let back: ClientMsg = reader
            .read_msg(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(back, hello());
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"garbage");
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        match reader.read_msg::<ClientMsg>(&mut cursor, 1024) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_error_but_do_not_poison_the_stream() {
        let mut wire = Vec::new();
        let junk = b"{not json";
        wire.extend_from_slice(&(junk.len() as u32).to_be_bytes());
        wire.extend_from_slice(junk);
        write_frame(&mut wire, &ClientMsg::Stats).expect("write");
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            reader.read_msg::<ClientMsg>(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Malformed(_))
        ));
        // The bad frame is consumed; the next one decodes fine.
        let next: ClientMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(next, ClientMsg::Stats);
    }

    #[test]
    fn batch_reports_ride_the_wire_directly() {
        let report = BatchReport {
            size: 7,
            cache_hits: 3,
            simulated: 4,
            threads: 2,
            wall_seconds: 0.125,
        };
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&report));
        let back: BatchReport = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(back, report);
        // The JSON shape is the flat v1 `WireBatchReport` layout.
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"wall_seconds\""), "{json}");
    }

    #[test]
    fn metrics_snapshots_round_trip_through_frames() {
        let registry = gcnrl_telemetry::MetricsRegistry::new();
        registry.counter("serve.test.counter").add(3);
        registry
            .histogram("serve.test.latency.ns")
            .record(1_000_000);
        let msg = ServerMsg::Metrics(registry.snapshot());
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&msg));
        let back: ServerMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        let ServerMsg::Metrics(snapshot) = back else {
            panic!("wrong variant");
        };
        assert_eq!(snapshot.counter("serve.test.counter"), Some(3));
        assert_eq!(
            snapshot.histogram("serve.test.latency.ns").unwrap().count,
            1
        );
    }
}
