//! The wire protocol: length-prefixed JSON frames carrying serde messages.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//!   ┌──────────────┬──────────────────────────────┐
//!   │ length: u32  │ payload: `length` JSON bytes │
//!   │ (big-endian) │ (one serialised message)     │
//!   └──────────────┴──────────────────────────────┘
//! ```
//!
//! JSON (through the workspace's serde stack) keeps the protocol inspectable
//! with `nc`/`tcpdump` and — crucially — **bit-exact**: the local
//! `serde_json` prints floats with shortest round-trip formatting, so a
//! [`PerformanceReport`] deserialised on the client is bit-identical to the
//! one the server's engine produced. That is what lets a
//! [`RemoteBackend`](crate::RemoteBackend) reproduce local runs exactly.
//!
//! # Protocol v3: pipelining and multiplexing
//!
//! Since v3 every request carries a client-chosen `id` echoed on its
//! response, so a client may keep a whole *window* of requests in flight and
//! match responses out of order; and a `channel` number names one of several
//! logical sessions sharing the socket ([`ClientMsg::Open`] opens extra
//! channels — e.g. a trainer running source + target transfer sessions over
//! one connection). The handshake still opens with [`Hello`] (which binds
//! channel 0); v2 clients are recognised by `Hello.version == 2` and served
//! through the legacy shapes in [`v2`], strictly one request at a time.
//!
//! A connection opens with a versioned handshake ([`Hello`] →
//! [`ServerMsg::Welcome`] or [`ServerMsg::Error`]), then any number of
//! pipelined [`ClientMsg::EvalBatch`] / [`ClientMsg::Stats`] /
//! [`ClientMsg::Metrics`] exchanges (and channel `Open`/`Close`), and closes
//! with `Goodbye` (or by dropping the socket — the server tolerates
//! mid-batch disconnects).

use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{BatchReport, CacheKey, ExecStats, SessionStats};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use gcnrl_telemetry::{RegistrySnapshot, TraceContext};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Version of the wire protocol; bumped on incompatible message changes.
/// The handshake rejects clients speaking anything outside
/// [`ACCEPTED_PROTOCOL_VERSIONS`].
///
/// v5: [`ClientMsg::EvalBatch`] and [`ClientMsg::CacheQuery`] carry an
/// optional distributed-tracing context (`trace_id`/`span_id`), so
/// server-side engine/cache/peer-pull spans parent under the caller's span
/// and a sharded fan-out reassembles into one request tree. The field is
/// `Option` and a missing JSON key decodes as `None`, so every v4 frame is
/// a valid v5 frame — v4 clients are served identically.
///
/// v4: adds the shard-peering frames [`ClientMsg::CacheQuery`] /
/// [`ServerMsg::CacheFill`], so a shard holding a key another shard needs
/// can hand the cached report over instead of forcing a re-simulation.
/// Every v3 shape is unchanged — v3 clients are served identically.
///
/// v3: requests carry an `id` (responses may return out of order —
/// pipelining) and a `channel` (several logical sessions per socket —
/// multiplexing). v2 clients are still served via the [`v2`] compat shapes.
pub const PROTOCOL_VERSION: u32 = 5;

/// The previous protocol version: v4 peering without the optional trace
/// context. Served identically to v5 (the trace field is optional and
/// defaults to `None`).
pub const PREV_PROTOCOL_VERSION: u32 = 4;

/// The v3 pipelining/multiplexing protocol, still accepted: served
/// identically minus the peering frames and trace context.
pub const V3_PROTOCOL_VERSION: u32 = 3;

/// The oldest protocol version the server still accepts: blocking
/// one-request-at-a-time clients speaking the [`v2`] message shapes.
pub const LEGACY_PROTOCOL_VERSION: u32 = 2;

/// Every protocol version the handshake accepts, newest first.
pub const ACCEPTED_PROTOCOL_VERSIONS: [u32; 4] = [
    PROTOCOL_VERSION,
    PREV_PROTOCOL_VERSION,
    V3_PROTOCOL_VERSION,
    LEGACY_PROTOCOL_VERSION,
];

/// Default cap on one frame's payload size (32 MiB). A `u32` length prefix
/// could announce 4 GiB; the cap keeps a corrupt or hostile peer from making
/// the receiver allocate it.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 << 20;

/// The handshake a client opens its connection with. Identical in v2 and
/// v3 (the JSON shape did not change), which is what lets the server decode
/// the first frame before knowing the peer's version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Client protocol version; must be one of
    /// [`ACCEPTED_PROTOCOL_VERSIONS`].
    pub version: u32,
    /// Benchmark channel 0 evaluates (selects the registry service).
    pub benchmark: Benchmark,
    /// Technology node of the evaluator.
    pub node: TechnologyNode,
    /// Optional session name (shown in server-side [`SessionStats`]);
    /// defaults to the peer address.
    pub session: Option<String>,
    /// Optional fair-share weight mapped onto
    /// [`SessionHandle::with_weight`](gcnrl_exec::SessionHandle::with_weight).
    pub weight: Option<u64>,
}

/// The server's answer to a valid [`Hello`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Welcome {
    /// The protocol version the connection will speak: the client's own
    /// (the server answers v2 clients in v2 shapes).
    pub version: u32,
    /// The session name the server registered for channel 0.
    pub session: String,
    /// Metric descriptions of the evaluator behind channel 0, in evaluator
    /// order — what [`EvalBackend::metric_specs`](gcnrl_exec::EvalBackend)
    /// reports on the client side.
    pub metric_specs: Vec<MetricSpec>,
}

/// The statistics bundle answering [`ClientMsg::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireStats {
    /// Cumulative statistics of the shared engine serving the session — the
    /// merged view where cross-client cache hits show up.
    pub engine: ExecStats,
    /// The channel's session accounting.
    pub session: SessionStats,
    /// The engine's most recent batch.
    pub last_batch: BatchReport,
}

/// Messages a v3 client sends. Every request variant carries a
/// client-chosen `id` that the server echoes on the response, so responses
/// may return out of order; `channel` selects which of the connection's
/// logical sessions serves the request (channel 0 is bound by the
/// handshake, further channels by [`ClientMsg::Open`]).
///
/// (Variant sizes are deliberately uneven — `Hello`/`Open` inline the
/// technology node. Wire messages are transient, one-per-exchange values,
/// so the `large_enum_variant` size concern does not apply.)
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Handshake; must be the first message on the connection. Binds
    /// channel 0 to a session for `(benchmark, node)`.
    Hello(Hello),
    /// Opens another logical session on the same socket under a fresh,
    /// client-chosen channel number. Answered by [`ServerMsg::Opened`].
    Open {
        /// Request id, echoed on the response.
        id: u64,
        /// Client-chosen channel number; must not collide with a channel
        /// that is already open on this connection.
        channel: u32,
        /// Benchmark the new channel evaluates.
        benchmark: Benchmark,
        /// Technology node of the evaluator.
        node: TechnologyNode,
        /// Optional session name (defaults to `peer#channel`).
        session: Option<String>,
        /// Optional fair-share weight for the new session.
        weight: Option<u64>,
    },
    /// Closes one channel (retiring its server-side session) while the
    /// connection and its other channels stay open. Answered by
    /// [`ServerMsg::Closed`].
    Close {
        /// Request id, echoed on the response.
        id: u64,
        /// The channel to close.
        channel: u32,
    },
    /// Evaluate a batch of candidates through one channel's session.
    EvalBatch {
        /// Request id, echoed on the response.
        id: u64,
        /// Channel whose session evaluates the batch.
        channel: u32,
        /// Candidate sizings, evaluated in order.
        params: Vec<ParamVector>,
        /// Distributed-tracing context (v5): when present, server-side spans
        /// for this request parent under the caller's span. Absent on v4 and
        /// earlier frames (a missing key decodes as `None`); never affects
        /// results.
        trace: Option<TraceContext>,
    },
    /// Request the channel's session/engine statistics.
    Stats {
        /// Request id, echoed on the response.
        id: u64,
        /// Channel whose session is described.
        channel: u32,
    },
    /// Request the server's full telemetry snapshot (every counter, gauge
    /// and latency histogram of the process).
    Metrics {
        /// Request id, echoed on the response.
        id: u64,
    },
    /// Shard peering (v4): asks whether any of the server's result caches
    /// hold these content-addressed keys. Sent shard-to-shard when a
    /// mis-routed or failover-re-hashed key's owner is a different server,
    /// so the receiver can pull the owner's cached report instead of
    /// re-simulating. Valid *before* a session handshake (a peer probe binds
    /// no benchmark), answered by [`ServerMsg::CacheFill`]. Cache reads are
    /// non-polluting: probes touch neither hit/miss counters nor LRU order.
    CacheQuery {
        /// Request id, echoed on the response.
        id: u64,
        /// The content-addressed keys to look up.
        keys: Vec<CacheKey>,
        /// Distributed-tracing context (v5): links the owner shard's
        /// cache-lookup span under the pulling shard's peer-pull span.
        /// Absent on v4 frames (decodes as `None`).
        trace: Option<TraceContext>,
    },
    /// Close the connection cleanly (all channels retire).
    Goodbye,
}

/// Messages a v3 server sends.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Successful handshake (channel 0 is open).
    Welcome(Welcome),
    /// A channel opened by [`ClientMsg::Open`].
    Opened {
        /// Echo of the request id.
        id: u64,
        /// The channel number that is now open.
        channel: u32,
        /// The session name the server registered for the channel.
        session: String,
        /// Metric descriptions of the evaluator behind the channel.
        metric_specs: Vec<MetricSpec>,
    },
    /// A channel closed by [`ClientMsg::Close`].
    Closed {
        /// Echo of the request id.
        id: u64,
        /// The channel that closed.
        channel: u32,
    },
    /// Reports for one [`ClientMsg::EvalBatch`], in request order.
    BatchResult {
        /// Echo of the request id.
        id: u64,
        /// Echo of the request channel.
        channel: u32,
        /// One report per requested candidate.
        reports: Vec<PerformanceReport>,
    },
    /// Statistics answering [`ClientMsg::Stats`].
    Stats {
        /// Echo of the request id.
        id: u64,
        /// Echo of the request channel.
        channel: u32,
        /// The statistics bundle.
        stats: WireStats,
    },
    /// Telemetry snapshot answering [`ClientMsg::Metrics`].
    Metrics {
        /// Echo of the request id.
        id: u64,
        /// The process-wide registry snapshot.
        snapshot: RegistrySnapshot,
    },
    /// Cache-peering answer to [`ClientMsg::CacheQuery`] (v4): one slot per
    /// queried key, in query order — `Some(report)` when any of the server's
    /// services had the key cached, `None` otherwise.
    CacheFill {
        /// Echo of the request id.
        id: u64,
        /// Per-key lookup results, in query order.
        hits: Vec<Option<PerformanceReport>>,
    },
    /// The request failed (handshake rejection, admission control,
    /// evaluator panic, malformed message). `id`/`channel` are `None` for
    /// connection-level failures that answer no specific request — which is
    /// also how a legacy v2 `Error { message }` frame decodes, so a v3
    /// client pointed at an old server still reads its handshake rejection.
    Error {
        /// Echo of the failing request's id (`None`: connection-level).
        id: Option<u64>,
        /// Echo of the failing request's channel, when known.
        channel: Option<u32>,
        /// Human-readable failure description.
        message: String,
    },
    /// Acknowledges a client `Goodbye` (or announces a server drain); sent
    /// before the server closes the connection.
    Goodbye,
}

/// The legacy v2 message shapes, kept so existing blocking clients keep
/// working against the v3 server (and so tests can impersonate one). A v2
/// connection is recognised by its `Hello.version`; the server then decodes
/// its frames with these enums and answers in these shapes, strictly one
/// request at a time (v2 clients never pipeline, and serialised service
/// preserves the in-order responses they rely on).
pub mod v2 {
    use super::{
        Deserialize, Hello, ParamVector, PerformanceReport, RegistrySnapshot, Serialize, Welcome,
        WireStats,
    };

    /// Messages a v2 client sends (no ids, no channels — one implicit
    /// session per connection, one request in flight).
    #[allow(clippy::large_enum_variant)]
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub enum ClientMsg {
        /// Handshake; must be the first message on the connection.
        Hello(Hello),
        /// Evaluate a batch through the connection's session.
        EvalBatch {
            /// Candidate sizings, evaluated in order.
            params: Vec<ParamVector>,
        },
        /// Request the session/engine statistics.
        Stats,
        /// Request the server's telemetry snapshot.
        Metrics,
        /// Close the connection cleanly.
        Goodbye,
    }

    /// Messages a v2 server sends.
    #[allow(clippy::large_enum_variant)]
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub enum ServerMsg {
        /// Successful handshake.
        Welcome(Welcome),
        /// Reports for one `EvalBatch`, in request order.
        BatchResult {
            /// One report per requested candidate.
            reports: Vec<PerformanceReport>,
        },
        /// Statistics answering `Stats`.
        Stats(WireStats),
        /// Telemetry snapshot answering `Metrics`.
        Metrics(RegistrySnapshot),
        /// The request failed.
        Error {
            /// Human-readable failure description.
            message: String,
        },
        /// Acknowledges a client `Goodbye`.
        Goodbye,
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The peer closed the connection mid-frame (torn frame).
    Torn {
        /// Bytes of the incomplete frame that did arrive.
        buffered: usize,
    },
    /// The length prefix exceeds the configured cap.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload is not valid JSON for the expected message type.
    Malformed(String),
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Torn { buffered } => {
                write!(f, "connection closed mid-frame ({buffered} bytes buffered)")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serialises `msg` into one length-prefixed frame, returning the raw bytes
/// (prefix included). The reactor's worker pool uses this to serialise
/// responses off the I/O thread; [`write_frame`] and
/// [`FrameWriter::queue`] build on it.
///
/// # Errors
///
/// `InvalidData` when the message cannot serialise or exceeds `u32::MAX`
/// payload bytes.
pub fn encode_frame<T: Serialize>(msg: &T) -> std::io::Result<Vec<u8>> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(bytes);
    Ok(frame)
}

/// Serialises `msg` as one frame onto `writer` and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error (e.g. when the peer disconnected).
pub fn write_frame<T: Serialize>(writer: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let frame = encode_frame(msg)?;
    writer.write_all(&frame)?;
    writer.flush()
}

/// An incremental frame decoder that survives read timeouts: bytes
/// accumulate in an internal buffer across [`FrameReader::poll`] calls, so a
/// timeout landing in the middle of a frame loses nothing. The server uses
/// this to stay responsive to shutdown while a connection idles.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether a partial frame is currently buffered.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to complete one frame: parses the buffer if a full frame is
    /// already present, otherwise performs **one** `read` on `reader` (which
    /// blocks up to the stream's read timeout, or not at all on a
    /// nonblocking stream) and retries. Returns `Ok(None)` when the read
    /// timed out (or would block) before a frame completed — the caller
    /// decides whether to keep polling.
    ///
    /// # Errors
    ///
    /// [`FrameError::Closed`] on EOF at a frame boundary, [`FrameError::Torn`]
    /// on EOF mid-frame, and the other variants as described on
    /// [`FrameError`].
    pub fn poll<T: for<'de> Deserialize<'de>>(
        &mut self,
        reader: &mut impl Read,
        max_frame_bytes: usize,
    ) -> Result<Option<T>, FrameError> {
        loop {
            if let Some(msg) = self.try_decode(max_frame_bytes)? {
                return Ok(Some(msg));
            }
            let mut chunk = [0u8; 8192];
            match reader.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::Closed
                    } else {
                        FrameError::Torn {
                            buffered: self.buf.len(),
                        }
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Blocks until a whole frame arrives (for streams without a read
    /// timeout, where [`FrameReader::poll`] never returns `Ok(None)`).
    ///
    /// # Errors
    ///
    /// As for [`FrameReader::poll`]; additionally treats a timeout on a
    /// timeout-configured stream as an I/O error, since "blocking" read was
    /// requested.
    pub fn read_msg<T: for<'de> Deserialize<'de>>(
        &mut self,
        reader: &mut impl Read,
        max_frame_bytes: usize,
    ) -> Result<T, FrameError> {
        match self.poll(reader, max_frame_bytes)? {
            Some(msg) => Ok(msg),
            None => Err(FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "read timed out waiting for a frame",
            ))),
        }
    }

    /// Parses one frame out of the buffer if it is complete.
    fn try_decode<T: for<'de> Deserialize<'de>>(
        &mut self,
        max_frame_bytes: usize,
    ) -> Result<Option<T>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > max_frame_bytes {
            return Err(FrameError::Oversized {
                len,
                max: max_frame_bytes,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = std::str::from_utf8(&self.buf[4..4 + len])
            .map_err(|e| FrameError::Malformed(e.to_string()))?;
        let msg =
            serde_json::from_str::<T>(payload).map_err(|e| FrameError::Malformed(e.to_string()));
        self.buf.drain(..4 + len);
        msg.map(Some)
    }
}

/// A buffered writer for nonblocking sockets: frames queue into an internal
/// buffer and [`FrameWriter::flush_into`] writes as much as the socket
/// accepts, keeping the rest (with its progress offset) for the next
/// readiness event. The reactor holds one per connection and only asks for
/// write-readiness while bytes are pending, so a slow or stalled client
/// costs buffer memory, never an I/O thread.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket (compacted lazily so a
    /// long sequence of partial writes does not re-copy the whole buffer
    /// each time).
    head: usize,
}

impl FrameWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Bytes queued but not yet accepted by the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Serialises `msg` and queues it as one frame.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the message cannot serialise (nothing is queued).
    pub fn queue<T: Serialize>(&mut self, msg: &T) -> std::io::Result<()> {
        let frame = encode_frame(msg)?;
        self.queue_frame(&frame);
        Ok(())
    }

    /// Queues one pre-encoded frame (length prefix included) — the worker
    /// pool serialises responses off the reactor thread and hands the raw
    /// bytes over.
    pub fn queue_frame(&mut self, frame: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(frame);
    }

    /// Writes as much pending data as `writer` accepts. Returns `Ok(true)`
    /// when the buffer drained completely, `Ok(false)` when the socket
    /// would block with bytes still pending (ask for write-readiness and
    /// retry later).
    ///
    /// # Errors
    ///
    /// Transport errors other than `WouldBlock` (the connection is dead;
    /// drop it).
    pub fn flush_into(&mut self, writer: &mut impl Write) -> std::io::Result<bool> {
        while self.head < self.buf.len() {
            match writer.write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.head += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    self.compact();
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.head = 0;
        Ok(true)
    }

    /// Drops already-written bytes once they dominate the buffer (or the
    /// buffer is fully drained), keeping amortised cost linear.
    fn compact(&mut self) {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head > 64 * 1024 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::ComponentParams;

    fn hello() -> ClientMsg {
        ClientMsg::Hello(Hello {
            version: PROTOCOL_VERSION,
            benchmark: Benchmark::TwoStageTia,
            node: TechnologyNode::tsmc180(),
            session: Some("test".to_owned()),
            weight: Some(2),
        })
    }

    fn frame_bytes<T: Serialize>(msg: &T) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, msg).expect("write to vec");
        out
    }

    #[test]
    fn messages_round_trip_through_frames() {
        let msgs = vec![
            hello(),
            ClientMsg::EvalBatch {
                id: 7,
                channel: 0,
                params: vec![ParamVector::new(vec![ComponentParams::Resistance(1.25)])],
                trace: Some(TraceContext {
                    trace_id: 0xdead_beef,
                    span_id: 42,
                }),
            },
            ClientMsg::Open {
                id: 8,
                channel: 1,
                benchmark: Benchmark::Ldo,
                node: TechnologyNode::tsmc180(),
                session: None,
                weight: None,
            },
            ClientMsg::Close { id: 9, channel: 1 },
            ClientMsg::Stats { id: 10, channel: 0 },
            ClientMsg::Metrics { id: 11 },
            ClientMsg::Goodbye,
        ];
        let mut wire = Vec::new();
        for msg in &msgs {
            write_frame(&mut wire, msg).expect("write");
        }
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        for msg in &msgs {
            let back: ClientMsg = reader
                .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
                .expect("read");
            assert_eq!(&back, msg);
        }
        assert!(matches!(
            reader.read_msg::<ClientMsg>(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn reports_round_trip_bit_exactly() {
        let mut report = PerformanceReport::new();
        report.set("gain_db", 1.0 / 3.0);
        report.set("bw_hz", 2.5e9 * (1.0 + f64::EPSILON));
        report.set("noise", -1e-300);
        let msg = ServerMsg::BatchResult {
            id: 3,
            channel: 0,
            reports: vec![report.clone()],
        };
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&msg));
        let back: ServerMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        let ServerMsg::BatchResult { id, reports, .. } = back else {
            panic!("wrong variant");
        };
        assert_eq!(id, 3);
        assert_eq!(reports[0], report);
        for (name, value) in report.iter() {
            assert_eq!(
                reports[0].get(name).unwrap().to_bits(),
                value.to_bits(),
                "{name} drifted through the wire"
            );
        }
    }

    #[test]
    fn v2_and_v3_hello_frames_are_wire_compatible() {
        // The handshake decodes before the version is known: a v2 client's
        // Hello must parse as a v3 ClientMsg (and vice versa).
        let legacy = v2::ClientMsg::Hello(Hello {
            version: LEGACY_PROTOCOL_VERSION,
            benchmark: Benchmark::TwoStageTia,
            node: TechnologyNode::tsmc180(),
            session: None,
            weight: None,
        });
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&legacy));
        let back: ClientMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read v2 hello as v3");
        let ClientMsg::Hello(hello) = back else {
            panic!("wrong variant");
        };
        assert_eq!(hello.version, LEGACY_PROTOCOL_VERSION);
    }

    #[test]
    fn v4_peering_frames_round_trip_with_order_preserved() {
        let keys = vec![
            CacheKey {
                benchmark: Benchmark::TwoStageTia,
                node: "tsmc180".to_owned(),
                param_bits: vec![1, 2, 3],
            },
            CacheKey {
                benchmark: Benchmark::Ldo,
                node: "tsmc180".to_owned(),
                param_bits: vec![9],
            },
        ];
        let query = ClientMsg::CacheQuery {
            id: 21,
            keys: keys.clone(),
            trace: None,
        };
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&query));
        let back: ClientMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(back, query);

        let mut report = PerformanceReport::new();
        report.set("gain_db", 1.0 / 7.0);
        let fill = ServerMsg::CacheFill {
            id: 21,
            hits: vec![Some(report.clone()), None],
        };
        let mut cursor = std::io::Cursor::new(frame_bytes(&fill));
        let back: ServerMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        let ServerMsg::CacheFill { id, hits } = back else {
            panic!("wrong variant");
        };
        assert_eq!(id, 21);
        assert_eq!(hits, vec![Some(report), None]);
    }

    #[test]
    fn v3_shapes_are_unchanged_under_the_v4_enums() {
        // A v3 client's frames must decode identically on a v4 server (and
        // v4 answers in v3 shapes must decode on a v3 client): the v3
        // variants did not change, v4 only *adds* CacheQuery/CacheFill.
        let v3_hello = ClientMsg::Hello(Hello {
            version: PREV_PROTOCOL_VERSION,
            benchmark: Benchmark::TwoStageTia,
            node: TechnologyNode::tsmc180(),
            session: None,
            weight: None,
        });
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&v3_hello));
        let back: ClientMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read v3 hello under v4");
        let ClientMsg::Hello(hello) = back else {
            panic!("wrong variant");
        };
        assert_eq!(hello.version, PREV_PROTOCOL_VERSION);
        // The externally tagged JSON of a shared variant is byte-identical
        // across versions — nothing for a v3 peer to trip on.
        let batch = ClientMsg::EvalBatch {
            id: 5,
            channel: 1,
            params: vec![ParamVector::new(vec![ComponentParams::Resistance(2.0)])],
            trace: None,
        };
        let json = serde_json::to_string(&batch).expect("serialize");
        assert!(json.starts_with("{\"EvalBatch\""), "{json}");
    }

    #[test]
    fn v4_frames_without_a_trace_key_decode_with_trace_none() {
        // A v4 client's EvalBatch/CacheQuery carry no `trace` member at all;
        // the v5 enums must decode them with `trace: None` (and a v5 frame
        // whose trace is None round-trips to the same value).
        let v4_batch = "{\"EvalBatch\":{\"id\":3,\"channel\":0,\"params\":[]}}";
        let back: ClientMsg = serde_json::from_str(v4_batch).expect("decode v4 batch");
        assert_eq!(
            back,
            ClientMsg::EvalBatch {
                id: 3,
                channel: 0,
                params: vec![],
                trace: None,
            }
        );
        let v4_query = "{\"CacheQuery\":{\"id\":4,\"keys\":[]}}";
        let back: ClientMsg = serde_json::from_str(v4_query).expect("decode v4 query");
        assert_eq!(
            back,
            ClientMsg::CacheQuery {
                id: 4,
                keys: vec![],
                trace: None,
            }
        );
        // And a v5 trace context survives the round trip bit-exactly.
        let with_trace = ClientMsg::EvalBatch {
            id: 5,
            channel: 2,
            params: vec![],
            trace: Some(TraceContext {
                trace_id: u64::MAX,
                span_id: 1,
            }),
        };
        let json = serde_json::to_string(&with_trace).expect("serialize");
        let back: ClientMsg = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, with_trace);
    }

    #[test]
    fn legacy_error_frames_decode_as_connection_level_v3_errors() {
        // A v2 server rejecting a handshake sends Error { message } with no
        // id/channel; the v3 client must still read it (fields land None).
        let legacy = v2::ServerMsg::Error {
            message: "protocol version mismatch".to_owned(),
        };
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&legacy));
        let back: ServerMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read v2 error as v3");
        let ServerMsg::Error {
            id,
            channel,
            message,
        } = back
        else {
            panic!("wrong variant");
        };
        assert_eq!(id, None);
        assert_eq!(channel, None);
        assert!(message.contains("version mismatch"));
    }

    #[test]
    fn torn_frames_are_reported_distinctly_from_clean_eof() {
        let full = frame_bytes(&hello());
        for cut in [1usize, 3, 4, full.len() - 1] {
            let mut reader = FrameReader::new();
            let mut cursor = std::io::Cursor::new(full[..cut].to_vec());
            match reader.read_msg::<ClientMsg>(&mut cursor, DEFAULT_MAX_FRAME_BYTES) {
                Err(FrameError::Torn { buffered }) => assert_eq!(buffered, cut),
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn frames_split_across_reads_reassemble() {
        // A reader fed one byte at a time (worst-case fragmentation) still
        // decodes the frame — the buffer accumulates across short reads.
        struct OneByte(std::io::Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut reader = FrameReader::new();
        let mut stream = OneByte(std::io::Cursor::new(frame_bytes(&hello())));
        let back: ClientMsg = reader
            .read_msg(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(back, hello());
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"garbage");
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        match reader.read_msg::<ClientMsg>(&mut cursor, 1024) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_error_but_do_not_poison_the_stream() {
        let mut wire = Vec::new();
        let junk = b"{not json";
        wire.extend_from_slice(&(junk.len() as u32).to_be_bytes());
        wire.extend_from_slice(junk);
        write_frame(&mut wire, &ClientMsg::Goodbye).expect("write");
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            reader.read_msg::<ClientMsg>(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Malformed(_))
        ));
        // The bad frame is consumed; the next one decodes fine.
        let next: ClientMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(next, ClientMsg::Goodbye);
    }

    #[test]
    fn batch_reports_ride_the_wire_directly() {
        let report = BatchReport {
            size: 7,
            cache_hits: 3,
            simulated: 4,
            threads: 2,
            wall_seconds: 0.125,
        };
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&report));
        let back: BatchReport = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(back, report);
        // The JSON shape is the flat v1 `WireBatchReport` layout.
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"wall_seconds\""), "{json}");
    }

    #[test]
    fn metrics_snapshots_round_trip_through_frames() {
        let registry = gcnrl_telemetry::MetricsRegistry::new();
        registry.counter("serve.test.counter").add(3);
        registry
            .histogram("serve.test.latency.ns")
            .record(1_000_000);
        let msg = ServerMsg::Metrics {
            id: 12,
            snapshot: registry.snapshot(),
        };
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(frame_bytes(&msg));
        let back: ServerMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        let ServerMsg::Metrics { id, snapshot } = back else {
            panic!("wrong variant");
        };
        assert_eq!(id, 12);
        assert_eq!(snapshot.counter("serve.test.counter"), Some(3));
        assert_eq!(
            snapshot.histogram("serve.test.latency.ns").unwrap().count,
            1
        );
    }

    #[test]
    fn frame_writer_survives_partial_writes_and_would_block() {
        // A socket that accepts one byte, then signals WouldBlock, on
        // repeat: the writer must resume exactly where it stopped and
        // deliver a byte-identical stream.
        struct Trickle {
            out: Vec<u8>,
            starve: bool,
        }
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.starve = !self.starve;
                if self.starve {
                    Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "full"))
                } else {
                    self.out.push(buf[0]);
                    Ok(1)
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let msgs = vec![
            ServerMsg::Goodbye,
            ServerMsg::Error {
                id: Some(1),
                channel: Some(0),
                message: "busy".to_owned(),
            },
        ];
        let mut expected = Vec::new();
        let mut writer = FrameWriter::new();
        for msg in &msgs {
            write_frame(&mut expected, msg).expect("write to vec");
            writer.queue(msg).expect("queue");
        }
        assert_eq!(writer.pending(), expected.len());

        let mut sink = Trickle {
            out: Vec::new(),
            starve: false,
        };
        let mut rounds = 0usize;
        while !writer.flush_into(&mut sink).expect("flush") {
            rounds += 1;
            assert!(rounds < 10 * expected.len(), "flush never drained");
        }
        assert!(writer.is_empty());
        assert_eq!(writer.pending(), 0);
        assert_eq!(sink.out, expected, "stream drifted across partial writes");

        // Queuing after a drain reuses the buffer cleanly.
        writer.queue(&ServerMsg::Goodbye).expect("queue");
        let mut plain = Vec::new();
        assert!(writer.flush_into(&mut plain).expect("flush"));
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(plain);
        let back: ServerMsg = reader
            .read_msg(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .expect("read");
        assert_eq!(back, ServerMsg::Goodbye);
    }
}
