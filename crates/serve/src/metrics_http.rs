//! A minimal plain-HTTP listener exposing the process's telemetry registry
//! and health introspection endpoints.
//!
//! Four resources, hand-rolled HTTP/1.1 (std-only, no keep-alive):
//!
//! | Path | Answer |
//! |------|--------|
//! | `/metrics` (or `/`) | the global registry in Prometheus text format |
//! | `/healthz` | `200 ok` while the listener lives (liveness) |
//! | `/readyz` | `200 ready` / `503 <reason>` from the readiness check |
//! | `/traces` | recent flight-recorder span trees as a JSON array |
//!
//! Anything else is a proper `404` with a `text/plain` body. The serve
//! binary binds one when `GCNRL_METRICS_ADDR` is set, wiring `/readyz` to
//! the eval server's drain- and admission-aware [`EvalServer::readiness`]
//! (via [`MetricsHttpServer::bind_with`]).
//!
//! [`EvalServer::readiness`]: crate::EvalServer::readiness

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A pluggable readiness probe for `/readyz`: `Ok(())` renders `200 ready`,
/// `Err(reason)` renders `503` with the reason as the body.
pub type ReadinessCheck = Arc<dyn Fn() -> Result<(), String> + Send + Sync>;

/// The metrics/health endpoint. Dropping it (or calling
/// [`MetricsHttpServer::shutdown`]) stops the listener.
pub struct MetricsHttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for MetricsHttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsHttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving scrapes; `/readyz` always answers `200 ready`.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(addr, Arc::new(|| Ok(())))
    }

    /// Like [`bind`](Self::bind), with a readiness check backing `/readyz` —
    /// the serve binary passes the eval server's drain- and admission-aware
    /// probe here.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, ...).
    pub fn bind_with(addr: impl ToSocketAddrs, ready: ReadinessCheck) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("gcnrl-metrics-http".to_owned())
                .spawn(move || accept_loop(&listener, &shutdown, &ready))
                .expect("spawn gcnrl-metrics-http accept loop")
        };
        Ok(MetricsHttpServer {
            addr,
            shutdown,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address the endpoint is listening on (with the concrete port when
    /// bound ephemerally).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection; it observes the
        // flag and exits before serving it.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.lock().expect("accept handle lock").take() {
            let _ = accept.join();
        }
    }
}

impl Drop for MetricsHttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &AtomicBool, ready: &ReadinessCheck) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return; // the shutdown wake-up (or a late scraper)
                }
                // Requests are cheap (render + one write), so they are served
                // inline on the accept thread; a slow reader is bounded by
                // the write timeout rather than wedging the loop forever.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                serve_request(&mut stream, ready);
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Extracts the request path (without query string) from the first line of
/// an HTTP/1.1 request head; `None` when the head is malformed.
fn request_path(head: &[u8]) -> Option<String> {
    let head = std::str::from_utf8(head).ok()?;
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    let target = parts.next()?;
    Some(
        target
            .split_once('?')
            .map_or(target, |(path, _)| path)
            .to_owned(),
    )
}

/// Reads the request head, routes on the path, and writes one HTTP/1.1
/// response. Transport errors are ignored (the scraper retries next
/// interval).
fn serve_request(stream: &mut TcpStream, ready: &ReadinessCheck) {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Best-effort: stop at the blank line ending the request head, on EOF,
    // on timeout, or once an ill-behaved client has sent 64 KiB of headers.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 64 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
        }
    }
    let path = request_path(&head).unwrap_or_else(|| "/".to_owned());
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    const TEXT: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    let (status, content_type, body) = match path.as_str() {
        "/metrics" | "/" => (
            "200 OK",
            PROM,
            gcnrl_telemetry::global().render_prometheus(),
        ),
        "/healthz" => ("200 OK", TEXT, "ok\n".to_owned()),
        "/readyz" => match ready() {
            Ok(()) => ("200 OK", TEXT, "ready\n".to_owned()),
            Err(reason) => ("503 Service Unavailable", TEXT, format!("{reason}\n")),
        },
        "/traces" => ("200 OK", JSON, gcnrl_telemetry::recent_traces_json()),
        _ => (
            "404 Not Found",
            TEXT,
            format!("no such resource: {path}\nknown: /metrics /healthz /readyz /traces\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Issues one `GET` for `path` against `addr` and returns the raw
    /// response text.
    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .expect("read response (Connection: close)");
        response
    }

    #[test]
    fn scrapes_return_the_global_registry_in_prometheus_text_format() {
        gcnrl_telemetry::global()
            .counter("serve.metrics_http.test_counter")
            .add(5);
        gcnrl_telemetry::global()
            .histogram("serve.metrics_http.test_latency.ns")
            .record(1500);
        let server = MetricsHttpServer::bind("127.0.0.1:0").expect("bind metrics endpoint");
        let response = get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4"),
            "{response}"
        );
        // Prometheus name mangling: dots become underscores; HELP/TYPE
        // headers precede each family.
        assert!(
            response.contains("serve_metrics_http_test_counter 5"),
            "{response}"
        );
        assert!(
            response.contains("# TYPE serve_metrics_http_test_counter counter"),
            "{response}"
        );
        assert!(
            response.contains("# HELP serve_metrics_http_test_counter"),
            "{response}"
        );
        assert!(
            response.contains("serve_metrics_http_test_latency_ns_count 1"),
            "{response}"
        );
        assert!(response.contains("le=\"+Inf\""), "{response}");
        // A second scrape works (one connection per scrape), and the bare
        // root aliases /metrics.
        let again = get(server.local_addr(), "/");
        assert!(again.contains("serve_metrics_http_test_counter"), "{again}");
        server.shutdown();
        // Idempotent shutdown; further connections are refused or unserved.
        server.shutdown();
    }

    #[test]
    fn health_ready_traces_and_404_routes_answer_distinctly() {
        let flag = Arc::new(AtomicBool::new(true));
        let probe = Arc::clone(&flag);
        let server = MetricsHttpServer::bind_with(
            "127.0.0.1:0",
            Arc::new(move || {
                if probe.load(Ordering::SeqCst) {
                    Ok(())
                } else {
                    Err("draining: 3 requests in flight".to_owned())
                }
            }),
        )
        .expect("bind metrics endpoint");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let ready = get(addr, "/readyz");
        assert!(ready.starts_with("HTTP/1.1 200 OK\r\n"), "{ready}");
        assert!(ready.ends_with("ready\n"), "{ready}");
        flag.store(false, Ordering::SeqCst);
        let not_ready = get(addr, "/readyz?verbose=1");
        assert!(
            not_ready.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{not_ready}"
        );
        assert!(not_ready.contains("draining: 3 requests"), "{not_ready}");

        let traces = get(addr, "/traces");
        assert!(traces.starts_with("HTTP/1.1 200 OK\r\n"), "{traces}");
        assert!(
            traces.contains("Content-Type: application/json"),
            "{traces}"
        );
        let body = traces.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.starts_with('['), "a JSON array: {traces}");

        let missing = get(addr, "/nope");
        assert!(
            missing.starts_with("HTTP/1.1 404 Not Found\r\n"),
            "{missing}"
        );
        assert!(
            missing.contains("Content-Type: text/plain"),
            "404 must carry a Content-Type: {missing}"
        );
        assert!(missing.contains("no such resource: /nope"), "{missing}");
        server.shutdown();
    }
}
