//! A minimal plain-HTTP listener exposing the process's telemetry registry
//! in Prometheus text format.
//!
//! One endpoint, one format: any `GET` answers with
//! [`MetricsRegistry::render_prometheus`](gcnrl_telemetry::MetricsRegistry::render_prometheus)
//! of the global registry. Std-only (hand-rolled HTTP/1.1 response, no
//! routing, no keep-alive) — enough for a Prometheus scraper or a `curl`,
//! and nothing more. The serve binary binds one when `GCNRL_METRICS_ADDR`
//! is set.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The Prometheus scrape endpoint. Dropping it (or calling
/// [`MetricsHttpServer::shutdown`]) stops the listener.
pub struct MetricsHttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for MetricsHttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsHttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving scrapes of the global telemetry registry.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, ...).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("gcnrl-metrics-http".to_owned())
                .spawn(move || accept_loop(&listener, &shutdown))
                .expect("spawn gcnrl-metrics-http accept loop")
        };
        Ok(MetricsHttpServer {
            addr,
            shutdown,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address the endpoint is listening on (with the concrete port when
    /// bound ephemerally).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection; it observes the
        // flag and exits before serving it.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.lock().expect("accept handle lock").take() {
            let _ = accept.join();
        }
    }
}

impl Drop for MetricsHttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return; // the shutdown wake-up (or a late scraper)
                }
                // Scrapes are cheap (render + one write), so they are served
                // inline on the accept thread; a slow reader is bounded by
                // the write timeout rather than wedging the loop forever.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                serve_scrape(&mut stream);
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Reads (and discards) the request head, then answers every request with
/// the rendered registry — there is only one resource to serve, so the
/// request line is irrelevant. Transport errors are ignored (the scraper
/// retries next interval).
fn serve_scrape(stream: &mut TcpStream) {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Best-effort: stop at the blank line ending the request head, on EOF,
    // on timeout, or once an ill-behaved client has sent 64 KiB of headers.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 64 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
        }
    }
    let body = gcnrl_telemetry::global().render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Issues one `GET` against `addr` and returns the raw response text.
    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .expect("send request");
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .expect("read response (Connection: close)");
        response
    }

    #[test]
    fn scrapes_return_the_global_registry_in_prometheus_text_format() {
        gcnrl_telemetry::global()
            .counter("serve.metrics_http.test_counter")
            .add(5);
        gcnrl_telemetry::global()
            .histogram("serve.metrics_http.test_latency.ns")
            .record(1500);
        let server = MetricsHttpServer::bind("127.0.0.1:0").expect("bind metrics endpoint");
        let response = scrape(server.local_addr());
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4"),
            "{response}"
        );
        // Prometheus name mangling: dots become underscores.
        assert!(
            response.contains("serve_metrics_http_test_counter 5"),
            "{response}"
        );
        assert!(
            response.contains("serve_metrics_http_test_latency_ns_count 1"),
            "{response}"
        );
        assert!(response.contains("le=\"+Inf\""), "{response}");
        // A second scrape works (one connection per scrape).
        let again = scrape(server.local_addr());
        assert!(again.contains("serve_metrics_http_test_counter"), "{again}");
        server.shutdown();
        // Idempotent shutdown; further connections are refused or unserved.
        server.shutdown();
    }
}
