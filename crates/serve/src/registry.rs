//! The multi-benchmark service registry: one shared [`EvalService`] per
//! `(benchmark, technology node)` behind a single facade.
//!
//! The server maps every connection onto a session of the service matching
//! its [`Hello`](crate::protocol::Hello); services spin up lazily on the
//! first connection that asks for their pair and are shared by every later
//! one, so concurrent clients optimising the same benchmark land on one
//! engine + cache (cross-client cache hits, in-flight dedup, fair rounds —
//! everything the process-local [`EvalService`] already guarantees).
//!
//! The registry also owns the **global cache budget**: `cache_budget` cached
//! reports are split evenly across `cache_slots` expected services, so a
//! server hosting all four paper benchmarks stays within one configured
//! memory envelope no matter which services clients actually touch.

use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_exec::{
    ClosedSessionStats, EngineConfig, EvalService, ExecStats, ServiceConfig, SessionStats,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Configuration of a [`ServiceRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Engine template for every lazily created service. The cache capacity
    /// is overridden by the budget split below; threads, quantisation and
    /// persistence apply as given.
    pub engine: EngineConfig,
    /// Dispatcher configuration of every created service (round candidate
    /// cap, deadline-based round closing).
    pub service: ServiceConfig,
    /// Total cached reports across all services the registry creates.
    pub cache_budget: usize,
    /// How many distinct `(benchmark, node)` services the budget is split
    /// over. Services beyond this count still open (each with one even
    /// share), slightly overshooting the budget rather than refusing
    /// clients.
    pub cache_slots: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        let engine = EngineConfig::default();
        RegistryConfig {
            cache_budget: engine.cache_capacity,
            cache_slots: Benchmark::ALL.len(),
            service: ServiceConfig::default(),
            engine,
        }
    }
}

impl RegistryConfig {
    /// Returns a copy with a different total cache budget.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.cache_budget = budget.max(1);
        self
    }

    /// Returns a copy splitting the budget over a different slot count.
    pub fn with_cache_slots(mut self, slots: usize) -> Self {
        self.cache_slots = slots.max(1);
        self
    }

    /// The per-service cache capacity under the even budget split.
    pub fn cache_share(&self) -> usize {
        (self.cache_budget / self.cache_slots.max(1)).max(1)
    }
}

/// Statistics of one registry entry, serialisable for server reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceEntryStats {
    /// Benchmark the service evaluates (paper short name).
    pub benchmark: String,
    /// Technology node name.
    pub node: String,
    /// Merged engine statistics across every session of the service.
    pub engine: ExecStats,
    /// Per-session accounting of the *live* sessions, in session-creation
    /// order.
    pub sessions: Vec<SessionStats>,
    /// Aggregate of every retired (closed-connection) session.
    pub closed: ClosedSessionStats,
}

/// Lazily instantiated, shared [`EvalService`]s keyed by
/// `(benchmark, technology node)`.
pub struct ServiceRegistry {
    config: RegistryConfig,
    services: Mutex<BTreeMap<String, (Benchmark, String, EvalService)>>,
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let services = self.services.lock().expect("registry lock");
        f.debug_struct("ServiceRegistry")
            .field("config", &self.config)
            .field("services", &services.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        ServiceRegistry {
            config,
            services: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configuration the registry was built with.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The service for `(benchmark, node)`, creating it (and its engine +
    /// dispatcher) on first use. The key includes the *full* node parameters,
    /// not just the name, so two nodes that merely share a label do not
    /// alias onto one evaluator.
    pub fn service_for(&self, benchmark: Benchmark, node: &TechnologyNode) -> EvalService {
        let key = format!(
            "{benchmark:?}@{}",
            serde_json::to_string(node).unwrap_or_else(|_| node.name.clone())
        );
        if let Some((_, _, service)) = self.services.lock().expect("registry lock").get(&key) {
            return service.clone();
        }
        // Build outside the lock: constructing an EvalService can be slow
        // (evaluator build, dispatcher spawn, persistent-cache replay when
        // GCNRL_CACHE_PATH is set), and holding the registry mutex through
        // it would stall every concurrent handshake and stats() call. Two
        // racing builders are resolved at insert time — the loser's service
        // is dropped (its dispatcher drains an empty queue and joins).
        let engine = self
            .config
            .engine
            .clone()
            .with_cache_capacity(self.config.cache_share());
        let built =
            EvalService::for_benchmark(benchmark, node, engine, self.config.service.clone());
        let mut services = self.services.lock().expect("registry lock");
        if let Some((_, _, service)) = services.get(&key) {
            return service.clone();
        }
        services.insert(key, (benchmark, node.name.clone(), built.clone()));
        built
    }

    /// Installs an already-built service for `(benchmark, node)`, replacing
    /// any lazily created one. Tests use this to put a deterministic
    /// evaluator (e.g. a fixed-latency stub) behind the wire path; the
    /// admission-control tests rely on it to hold the queue provably busy.
    pub fn insert_service(
        &self,
        benchmark: Benchmark,
        node: &TechnologyNode,
        service: EvalService,
    ) {
        let key = format!(
            "{benchmark:?}@{}",
            serde_json::to_string(node).unwrap_or_else(|_| node.name.clone())
        );
        self.services
            .lock()
            .expect("registry lock")
            .insert(key, (benchmark, node.name.clone(), service));
    }

    /// Requests submitted but not yet resolved, summed over every service —
    /// the backlog signal the server's admission control compares against
    /// `GCNRL_SERVE_BACKLOG`.
    pub fn pending_requests(&self) -> u64 {
        let services = self.services.lock().expect("registry lock");
        services
            .values()
            .map(|(_, _, service)| service.pending_requests())
            .sum()
    }

    /// Number of services instantiated so far.
    pub fn len(&self) -> usize {
        self.services.lock().expect("registry lock").len()
    }

    /// Whether no service has been instantiated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-service statistics (engine + sessions), in key order.
    pub fn stats(&self) -> Vec<ServiceEntryStats> {
        let services = self.services.lock().expect("registry lock");
        services
            .values()
            .map(|(benchmark, node, service)| ServiceEntryStats {
                benchmark: benchmark.paper_name().to_owned(),
                node: node.clone(),
                engine: service.engine_stats(),
                sessions: service.session_stats(),
                closed: service.closed_session_stats(),
            })
            .collect()
    }

    /// Drains and joins every service's dispatcher (idempotent). Called by
    /// the server after the last connection handler exits.
    pub fn shutdown(&self) {
        let services = self.services.lock().expect("registry lock");
        for (_, _, service) in services.values() {
            service.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ServiceRegistry {
        ServiceRegistry::new(
            RegistryConfig::default()
                .with_cache_budget(64)
                .with_cache_slots(4),
        )
    }

    #[test]
    fn services_are_created_lazily_and_shared_per_pair() {
        let registry = registry();
        assert!(registry.is_empty());
        let node = TechnologyNode::tsmc180();
        let a = registry.service_for(Benchmark::TwoStageTia, &node);
        let b = registry.service_for(Benchmark::TwoStageTia, &node);
        assert_eq!(registry.len(), 1, "same pair must share one service");
        // Shared service: a session opened through one handle is visible in
        // statistics read through the other.
        let _session = a.session_named("via-a");
        assert_eq!(b.session_stats().len(), 1);
        let other = registry.service_for(Benchmark::Ldo, &node);
        assert_eq!(registry.len(), 2);
        assert!(other.is_open());
        registry.shutdown();
        assert!(!a.is_open());
        assert!(!other.is_open());
    }

    #[test]
    fn cache_budget_splits_evenly_across_slots() {
        let registry = registry();
        assert_eq!(registry.config().cache_share(), 16);
        let node = TechnologyNode::tsmc180();
        let service = registry.service_for(Benchmark::TwoStageTia, &node);
        assert_eq!(service.engine().config().cache_capacity, 16);
    }

    #[test]
    fn nodes_differing_beyond_the_name_get_their_own_service() {
        let registry = registry();
        let node = TechnologyNode::tsmc180();
        let mut tweaked = node.clone();
        tweaked.vdd += 0.1;
        registry.service_for(Benchmark::TwoStageTia, &node);
        registry.service_for(Benchmark::TwoStageTia, &tweaked);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn stats_cover_every_instantiated_service() {
        let registry = registry();
        let node = TechnologyNode::tsmc180();
        let service = registry.service_for(Benchmark::Ldo, &node);
        let session = service.session_named("client");
        let space = Benchmark::Ldo.circuit().design_space(&node);
        session.evaluate_batch(&[space.nominal()]);
        let stats = registry.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].benchmark, "LDO");
        assert_eq!(stats[0].node, node.name);
        assert_eq!(stats[0].engine.simulated, 1);
        assert_eq!(stats[0].sessions.len(), 1);
        assert_eq!(stats[0].sessions[0].name, "client");
    }
}
