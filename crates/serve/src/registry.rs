//! The multi-benchmark service registry: one shared [`EvalService`] per
//! `(benchmark, technology node)` behind a single facade.
//!
//! The server maps every connection onto a session of the service matching
//! its [`Hello`](crate::protocol::Hello); services spin up lazily on the
//! first connection that asks for their pair and are shared by every later
//! one, so concurrent clients optimising the same benchmark land on one
//! engine + cache (cross-client cache hits, in-flight dedup, fair rounds —
//! everything the process-local [`EvalService`] already guarantees).
//!
//! The registry also owns the **global cache budget**: `cache_budget` cached
//! reports are split evenly across `cache_slots` expected services, so a
//! server hosting all four paper benchmarks stays within one configured
//! memory envelope no matter which services clients actually touch.

use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_exec::{
    CacheKey, ClosedSessionStats, EngineConfig, EvalService, ExecStats, ServiceConfig, SessionStats,
};
use gcnrl_sim::PerformanceReport;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Duration;

/// Configuration of a [`ServiceRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Engine template for every lazily created service. The cache capacity
    /// is overridden by the budget split below; threads, quantisation and
    /// persistence apply as given.
    pub engine: EngineConfig,
    /// Dispatcher configuration of every created service (round candidate
    /// cap, deadline-based round closing).
    pub service: ServiceConfig,
    /// Total cached reports across all services the registry creates.
    pub cache_budget: usize,
    /// How many distinct `(benchmark, node)` services the budget is split
    /// over. Services beyond this count still open (each with one even
    /// share), slightly overshooting the budget rather than refusing
    /// clients.
    pub cache_slots: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        let engine = EngineConfig::default();
        RegistryConfig {
            cache_budget: engine.cache_capacity,
            cache_slots: Benchmark::ALL.len(),
            service: ServiceConfig::default(),
            engine,
        }
    }
}

impl RegistryConfig {
    /// Returns a copy with a different total cache budget.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.cache_budget = budget.max(1);
        self
    }

    /// Returns a copy splitting the budget over a different slot count.
    pub fn with_cache_slots(mut self, slots: usize) -> Self {
        self.cache_slots = slots.max(1);
        self
    }

    /// The per-service cache capacity under the even budget split.
    pub fn cache_share(&self) -> usize {
        (self.cache_budget / self.cache_slots.max(1)).max(1)
    }
}

/// Statistics of one registry entry, serialisable for server reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceEntryStats {
    /// Benchmark the service evaluates (paper short name).
    pub benchmark: String,
    /// Technology node name.
    pub node: String,
    /// Merged engine statistics across every session of the service.
    pub engine: ExecStats,
    /// Per-session accounting of the *live* sessions, in session-creation
    /// order.
    pub sessions: Vec<SessionStats>,
    /// Aggregate of every retired (closed-connection) session.
    pub closed: ClosedSessionStats,
}

/// Lazily instantiated, shared [`EvalService`]s keyed by
/// `(benchmark, technology node)`.
pub struct ServiceRegistry {
    config: RegistryConfig,
    services: Mutex<BTreeMap<String, (Benchmark, String, EvalService)>>,
    /// Per-service engine request totals (`requests`) at the last
    /// [`ServiceRegistry::rebalance_cache`] call, keyed like `services` —
    /// the baseline the next rebalance diffs against to get recent demand.
    rebalance_seen: Mutex<HashMap<String, u64>>,
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let services = self.services.lock().expect("registry lock");
        f.debug_struct("ServiceRegistry")
            .field("config", &self.config)
            .field("services", &services.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        ServiceRegistry {
            config,
            services: Mutex::new(BTreeMap::new()),
            rebalance_seen: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration the registry was built with.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The service for `(benchmark, node)`, creating it (and its engine +
    /// dispatcher) on first use. The key includes the *full* node parameters,
    /// not just the name, so two nodes that merely share a label do not
    /// alias onto one evaluator.
    pub fn service_for(&self, benchmark: Benchmark, node: &TechnologyNode) -> EvalService {
        let key = format!(
            "{benchmark:?}@{}",
            serde_json::to_string(node).unwrap_or_else(|_| node.name.clone())
        );
        if let Some((_, _, service)) = self.services.lock().expect("registry lock").get(&key) {
            return service.clone();
        }
        // Build outside the lock: constructing an EvalService can be slow
        // (evaluator build, dispatcher spawn, persistent-cache replay when
        // GCNRL_CACHE_PATH is set), and holding the registry mutex through
        // it would stall every concurrent handshake and stats() call. Two
        // racing builders are resolved at insert time — the loser's service
        // is dropped (its dispatcher drains an empty queue and joins).
        let engine = self
            .config
            .engine
            .clone()
            .with_cache_capacity(self.config.cache_share());
        let built =
            EvalService::for_benchmark(benchmark, node, engine, self.config.service.clone());
        let mut services = self.services.lock().expect("registry lock");
        if let Some((_, _, service)) = services.get(&key) {
            return service.clone();
        }
        services.insert(key, (benchmark, node.name.clone(), built.clone()));
        built
    }

    /// Installs an already-built service for `(benchmark, node)`, replacing
    /// any lazily created one. Tests use this to put a deterministic
    /// evaluator (e.g. a fixed-latency stub) behind the wire path; the
    /// admission-control tests rely on it to hold the queue provably busy.
    pub fn insert_service(
        &self,
        benchmark: Benchmark,
        node: &TechnologyNode,
        service: EvalService,
    ) {
        let key = format!(
            "{benchmark:?}@{}",
            serde_json::to_string(node).unwrap_or_else(|_| node.name.clone())
        );
        self.services
            .lock()
            .expect("registry lock")
            .insert(key, (benchmark, node.name.clone(), service));
    }

    /// Requests submitted but not yet resolved, summed over every service —
    /// the backlog signal the server's admission control compares against
    /// `GCNRL_SERVE_BACKLOG`.
    pub fn pending_requests(&self) -> u64 {
        let services = self.services.lock().expect("registry lock");
        services
            .values()
            .map(|(_, _, service)| service.pending_requests())
            .sum()
    }

    /// p90 of the recent queue-wait samples merged across every service —
    /// the load signal behind queue-wait admission control. `None` until any
    /// service has dispatched a request. Merging the raw windows (rather
    /// than taking the max of per-service p90s) keeps one cold service with
    /// a single slow sample from tripping admission for the whole server.
    pub fn queue_wait_p90(&self) -> Option<Duration> {
        let mut samples: Vec<u64> = {
            let services = self.services.lock().expect("registry lock");
            services
                .values()
                .flat_map(|(_, _, service)| service.queue_wait_samples())
                .collect()
        };
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = (samples.len() * 9).div_ceil(10).max(1) - 1;
        Some(Duration::from_nanos(samples[rank]))
    }

    /// Evaluates the same queue-wait/backlog admission limits a `Hello`
    /// frame is gated on, as a readiness report: `Ok(())` when a new session
    /// would be admitted, `Err(reason)` with the limit that would reject it.
    /// Backs the serve tier's `/readyz` endpoint.
    ///
    /// # Errors
    ///
    /// The human-readable reason admission would currently refuse.
    pub fn admission_report(
        &self,
        queue_wait_limit: Option<Duration>,
        backlog_limit: Option<u64>,
    ) -> Result<(), String> {
        if let Some(limit) = queue_wait_limit {
            if let Some(p90) = self.queue_wait_p90() {
                if p90 > limit {
                    return Err(format!(
                        "busy: observed queue-wait p90 of {:.1} ms exceeds the \
                         admission limit of {:.1} ms",
                        p90.as_secs_f64() * 1e3,
                        limit.as_secs_f64() * 1e3
                    ));
                }
            }
        }
        if let Some(limit) = backlog_limit {
            let pending = self.pending_requests();
            if pending > limit {
                return Err(format!(
                    "busy: {pending} evaluation requests pending exceed the \
                     backlog limit of {limit}"
                ));
            }
        }
        Ok(())
    }

    /// Answers a protocol-v4 `CacheQuery`: one slot per key, in query order —
    /// `Some(report)` when any instantiated service's result cache holds the
    /// key, `None` otherwise. Probes are non-polluting (no hit/miss counter,
    /// no LRU recency effect), so a peer sweeping for mis-routed keys does
    /// not distort the rebalance signal or evict anything.
    pub fn peek_cached(&self, keys: &[CacheKey]) -> Vec<Option<PerformanceReport>> {
        let services = self.services.lock().expect("registry lock");
        keys.iter()
            .map(|key| {
                services.values().find_map(|(benchmark, node, service)| {
                    if *benchmark == key.benchmark && *node == key.node {
                        service.engine().peek_cached(key)
                    } else {
                        None
                    }
                })
            })
            .collect()
    }

    /// Re-apportions the global cache budget across the instantiated
    /// services by *recent demand* (engine requests since the previous
    /// rebalance), replacing the static even split. Every service keeps a
    /// floor of a quarter of its even share (so a briefly idle service is
    /// not squeezed to nothing), the rest follows traffic, and shrunken
    /// caches evict coldest-first (`ResultCache::resize`). Returns the
    /// `(service key, new capacity)` assignment, in key order.
    pub fn rebalance_cache(&self) -> Vec<(String, usize)> {
        let services = self.services.lock().expect("registry lock");
        if services.is_empty() {
            return Vec::new();
        }
        let mut seen = self.rebalance_seen.lock().expect("rebalance baseline lock");
        // Demand = engine requests (hits + misses) since the last call; the
        // +1 smoothing keeps a fully idle interval from zeroing every weight.
        let demands: Vec<(&String, u64, &EvalService)> = services
            .iter()
            .map(|(key, (_, _, service))| {
                let total = service.engine_stats().requests;
                let baseline = seen.entry(key.clone()).or_insert(0);
                let delta = total.saturating_sub(*baseline);
                *baseline = total;
                (key, delta + 1, service)
            })
            .collect();
        let budget = self.config.cache_budget.max(services.len());
        let floor = (self.config.cache_share() / 4).max(1);
        let count = demands.len();
        let mut shares: Vec<usize> = if floor * count >= budget {
            // Budget too tight for the floor: fall back to the even split.
            vec![(budget / count).max(1); count]
        } else {
            let pool = budget - floor * count;
            let weight_sum: u64 = demands.iter().map(|(_, w, _)| *w).sum();
            demands
                .iter()
                .map(|(_, weight, _)| {
                    floor
                        + ((pool as u128 * u128::from(*weight)) / u128::from(weight_sum.max(1)))
                            as usize
                })
                .collect()
        };
        // Integer division undershoots; hand the remainder to the hottest
        // service (ties broken by key order — deterministic).
        let assigned: usize = shares.iter().sum();
        if assigned < budget {
            let hottest = demands
                .iter()
                .enumerate()
                .max_by_key(|(i, (_, w, _))| (*w, std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            shares[hottest] += budget - assigned;
        }
        let mut assignment = Vec::with_capacity(count);
        for ((key, _, service), share) in demands.into_iter().zip(shares) {
            service.engine().resize_cache(share);
            assignment.push((key.clone(), share));
        }
        gcnrl_telemetry::global()
            .counter("serve.cache_rebalance")
            .inc();
        assignment
    }

    /// Number of services instantiated so far.
    pub fn len(&self) -> usize {
        self.services.lock().expect("registry lock").len()
    }

    /// Whether no service has been instantiated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-service statistics (engine + sessions), in key order.
    pub fn stats(&self) -> Vec<ServiceEntryStats> {
        let services = self.services.lock().expect("registry lock");
        services
            .values()
            .map(|(benchmark, node, service)| ServiceEntryStats {
                benchmark: benchmark.paper_name().to_owned(),
                node: node.clone(),
                engine: service.engine_stats(),
                sessions: service.session_stats(),
                closed: service.closed_session_stats(),
            })
            .collect()
    }

    /// Drains and joins every service's dispatcher (idempotent). Called by
    /// the server after the last connection handler exits.
    pub fn shutdown(&self) {
        let services = self.services.lock().expect("registry lock");
        for (_, _, service) in services.values() {
            service.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ServiceRegistry {
        ServiceRegistry::new(
            RegistryConfig::default()
                .with_cache_budget(64)
                .with_cache_slots(4),
        )
    }

    #[test]
    fn services_are_created_lazily_and_shared_per_pair() {
        let registry = registry();
        assert!(registry.is_empty());
        let node = TechnologyNode::tsmc180();
        let a = registry.service_for(Benchmark::TwoStageTia, &node);
        let b = registry.service_for(Benchmark::TwoStageTia, &node);
        assert_eq!(registry.len(), 1, "same pair must share one service");
        // Shared service: a session opened through one handle is visible in
        // statistics read through the other.
        let _session = a.session_named("via-a");
        assert_eq!(b.session_stats().len(), 1);
        let other = registry.service_for(Benchmark::Ldo, &node);
        assert_eq!(registry.len(), 2);
        assert!(other.is_open());
        registry.shutdown();
        assert!(!a.is_open());
        assert!(!other.is_open());
    }

    #[test]
    fn cache_budget_splits_evenly_across_slots() {
        let registry = registry();
        assert_eq!(registry.config().cache_share(), 16);
        let node = TechnologyNode::tsmc180();
        let service = registry.service_for(Benchmark::TwoStageTia, &node);
        assert_eq!(service.engine().config().cache_capacity, 16);
    }

    #[test]
    fn nodes_differing_beyond_the_name_get_their_own_service() {
        let registry = registry();
        let node = TechnologyNode::tsmc180();
        let mut tweaked = node.clone();
        tweaked.vdd += 0.1;
        registry.service_for(Benchmark::TwoStageTia, &node);
        registry.service_for(Benchmark::TwoStageTia, &tweaked);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn rebalance_shifts_cache_budget_toward_the_busy_service() {
        let registry = registry();
        let node = TechnologyNode::tsmc180();
        let busy = registry.service_for(Benchmark::TwoStageTia, &node);
        let idle = registry.service_for(Benchmark::Ldo, &node);
        // First call only sets the baselines (equal demand smoothing).
        registry.rebalance_cache();
        let space = Benchmark::TwoStageTia.circuit().design_space(&node);
        let session = busy.session_named("load");
        for i in 0..12 {
            let unit: Vec<f64> = (0..space.num_parameters())
                .map(|k| ((i * 13 + k * 7) % 29) as f64 / 28.0)
                .collect();
            session.evaluate_batch(&[space.from_unit(&unit)]);
        }
        let assignment = registry.rebalance_cache();
        assert_eq!(assignment.len(), 2);
        let total: usize = assignment.iter().map(|(_, share)| share).sum();
        assert_eq!(total, registry.config().cache_budget, "budget conserved");
        let busy_share = busy.engine().cache_capacity();
        let idle_share = idle.engine().cache_capacity();
        assert!(
            busy_share > idle_share,
            "demand must attract budget: busy={busy_share} idle={idle_share}"
        );
        let floor = (registry.config().cache_share() / 4).max(1);
        assert!(idle_share >= floor, "idle service squeezed below the floor");
    }

    #[test]
    fn peek_answers_cache_queries_without_polluting_counters() {
        let registry = registry();
        let node = TechnologyNode::tsmc180();
        let service = registry.service_for(Benchmark::TwoStageTia, &node);
        let space = Benchmark::TwoStageTia.circuit().design_space(&node);
        let candidate = space.nominal();
        let report = service
            .session_named("seed")
            .evaluate_batch(std::slice::from_ref(&candidate));
        let engine = service.engine();
        let hit_key = engine.cache_key(&candidate);
        let miss_key = CacheKey::new(Benchmark::Ldo, &node.name, &candidate, 12);
        let before = service.engine_stats();
        let hits = registry.peek_cached(&[hit_key, miss_key]);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].as_ref(), Some(&report[0]), "bit-identical peek");
        assert!(hits[1].is_none(), "foreign benchmark key must miss");
        let after = service.engine_stats();
        assert_eq!(
            (before.requests, before.cache_hits),
            (after.requests, after.cache_hits),
            "peeks must not count as engine traffic"
        );
    }

    #[test]
    fn stats_cover_every_instantiated_service() {
        let registry = registry();
        let node = TechnologyNode::tsmc180();
        let service = registry.service_for(Benchmark::Ldo, &node);
        let session = service.session_named("client");
        let space = Benchmark::Ldo.circuit().design_space(&node);
        session.evaluate_batch(&[space.nominal()]);
        let stats = registry.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].benchmark, "LDO");
        assert_eq!(stats[0].node, node.name);
        assert_eq!(stats[0].engine.simulated, 1);
        assert_eq!(stats[0].sessions.len(), 1);
        assert_eq!(stats[0].sessions[0].name, "client");
    }
}
