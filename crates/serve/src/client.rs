//! The remote evaluation backend: an [`EvalBackend`] implementation that
//! forwards batches to an [`EvalServer`](crate::EvalServer) over TCP.
//!
//! Because evaluators are pure and the wire format round-trips every float
//! bit-exactly, a `SizingEnv` (or `FomConfig` calibration sweep) over a
//! `RemoteBackend` produces results bit-identical to the same run over a
//! local engine — the server is purely a sharing/locality decision.
//!
//! Protocol v3 client: every request carries an `id`, a background reader
//! thread matches responses back to their waiters, so up to
//! [`RemoteConfig::pipeline`] batches ride the wire concurrently
//! ([`RemoteBackend::submit_batch`] / [`PendingReply::wait`]). The
//! synchronous [`EvalBackend::evaluate_batch`] path is submit-then-wait and
//! therefore bit-identical to the old blocking client. On a transport
//! failure the reader transparently reconnects with bounded exponential
//! backoff ([`ReconnectConfig`]), re-handshakes, re-opens every multiplexed
//! channel and replays the in-flight window — waiters never observe a
//! blip unless every retry is exhausted.

use crate::protocol::{
    encode_frame, ClientMsg, FrameError, FrameReader, Hello, ServerMsg, Welcome, WireStats,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{BatchReport, EvalBackend, ExecStats};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use gcnrl_telemetry::{trace_id_for, SpanHandle, TraceContext};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Why a remote operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// A frame could not be decoded.
    Frame(FrameError),
    /// The server answered the handshake (or a request) with an error.
    Rejected(String),
    /// The server sent a reply the protocol does not allow here.
    Protocol(String),
    /// The connection died and every reconnect attempt failed.
    Disconnected(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Frame(e) => write!(f, "protocol framing error: {e}"),
            ServeError::Rejected(msg) => write!(f, "server rejected the request: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Disconnected(msg) => write!(f, "connection lost: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

/// Reconnect-with-backoff policy applied when the server connection drops
/// mid-session (server restart, network blip).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconnectConfig {
    /// Reconnect attempts before the backend gives up and fails every
    /// outstanding request (`0` disables reconnecting entirely).
    pub max_retries: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Upper bound on the per-attempt delay.
    pub max_delay: Duration,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        ReconnectConfig {
            max_retries: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl ReconnectConfig {
    /// The backoff before retry `attempt` (0-based): exponential with a
    /// deterministic ±25% jitter (no RNG — the jitter pattern is a fixed
    /// multiplicative-hash sequence, so tests stay reproducible while
    /// concurrent clients still de-synchronise).
    fn delay(&self, attempt: u32) -> Duration {
        let doubled = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let jitter = 0.75 + 0.5 * ((attempt as u64 * 2_654_435_761) % 1000) as f64 / 1000.0;
        doubled.mul_f64(jitter)
    }
}

/// Client-side connection options.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteConfig {
    /// Session name announced to the server (defaults to the peer-assigned
    /// name — the client's address — when `None`).
    pub session: Option<String>,
    /// Fair-share weight requested for the session (see
    /// [`SessionHandle::with_weight`](gcnrl_exec::SessionHandle::with_weight)).
    pub weight: u64,
    /// Frame payload cap applied to received frames.
    pub max_frame_bytes: usize,
    /// Batches allowed in flight concurrently ([`RemoteBackend::submit_batch`]
    /// blocks past this window). `GCNRL_SERVE_PIPELINE` in the binaries.
    pub pipeline: usize,
    /// Reconnect-with-backoff policy on transport failures.
    pub reconnect: ReconnectConfig,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            session: None,
            weight: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pipeline: 8,
            reconnect: ReconnectConfig::default(),
        }
    }
}

/// What a completed request resolved to.
enum Reply {
    Batch(Vec<PerformanceReport>),
    Stats(WireStats),
    Metrics(gcnrl_telemetry::RegistrySnapshot),
    Opened {
        session: String,
        metric_specs: Vec<MetricSpec>,
    },
    Closed,
    CacheFill(Vec<Option<PerformanceReport>>),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    /// An `EvalBatch` — counted against the pipeline window.
    Batch,
    /// `Stats`/`Metrics`/`Open`/`Close` issued by a caller.
    Control,
    /// A channel re-`Open` issued by the reconnect path; nobody waits on it.
    Internal,
}

/// One in-flight request: the encoded frame (kept for replay after a
/// reconnect) and, once the reader matched a response, its outcome.
struct Slot {
    frame: Vec<u8>,
    kind: SlotKind,
    result: Option<Result<Reply, String>>,
}

/// Everything needed to re-open a multiplexed channel after a reconnect.
#[derive(Clone)]
struct ChannelSpec {
    benchmark: Benchmark,
    node: TechnologyNode,
    session: Option<String>,
    weight: Option<u64>,
}

struct ClientState {
    /// The write half; `None` while the reader is between connections.
    stream: Option<TcpStream>,
    pending: BTreeMap<u64, Slot>,
    /// Live multiplexed channels (excluding channel 0, which rides `Hello`).
    channels: BTreeMap<u32, ChannelSpec>,
    next_id: u64,
    next_channel: u32,
    /// `EvalBatch` requests in flight (window accounting).
    batches_in_flight: usize,
    /// Completed reconnects — bumps once per successful re-handshake.
    generation: u64,
    /// A clean shutdown was requested (`goodbye` or drop).
    closed: bool,
    /// Terminal failure after retries exhausted; fails all future requests.
    broken: Option<String>,
}

struct ClientInner {
    addr: SocketAddr,
    hello: Hello,
    max_frame_bytes: usize,
    pipeline: usize,
    reconnect: ReconnectConfig,
    state: Mutex<ClientState>,
    cond: Condvar,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl ClientInner {
    /// Registers a request slot and writes its frame if connected (if not,
    /// the reconnect replay sends it). Returns the request id.
    fn send(
        &self,
        kind: SlotKind,
        build: impl FnOnce(u64) -> ClientMsg,
    ) -> Result<u64, ServeError> {
        let mut state = self.state.lock().expect("remote client lock");
        if kind == SlotKind::Batch {
            while state.batches_in_flight >= self.pipeline.max(1)
                && state.broken.is_none()
                && !state.closed
            {
                state = self.cond.wait(state).expect("remote client lock");
            }
        }
        if let Some(broken) = &state.broken {
            return Err(ServeError::Disconnected(broken.clone()));
        }
        if state.closed {
            return Err(ServeError::Protocol(
                "the remote session is already closed".to_owned(),
            ));
        }
        let id = state.next_id;
        state.next_id += 1;
        let frame = encode_frame(&build(id))?;
        state.pending.insert(
            id,
            Slot {
                frame: frame.clone(),
                kind,
                result: None,
            },
        );
        if kind == SlotKind::Batch {
            state.batches_in_flight += 1;
        }
        if let Some(stream) = &mut state.stream {
            if let Err(error) = stream.write_all(&frame) {
                // Kick the (possibly blocked) reader into its reconnect
                // path; the slot just registered is replayed from there.
                let _ = stream.shutdown(Shutdown::Both);
                state.stream = None;
                let _ = error;
            }
        }
        Ok(id)
    }

    /// Blocks until request `id` resolves.
    fn wait(&self, id: u64) -> Result<Reply, ServeError> {
        let mut state = self.state.lock().expect("remote client lock");
        loop {
            if state
                .pending
                .get(&id)
                .is_some_and(|slot| slot.result.is_some())
            {
                let slot = state.pending.remove(&id).expect("checked present");
                return match slot.result.expect("checked resolved") {
                    Ok(reply) => Ok(reply),
                    // A slot failed with the connection's own broken reason
                    // died with the transport (reconnects exhausted) — that
                    // is a disconnect, not the server rejecting the request.
                    Err(message) if state.broken.as_deref() == Some(message.as_str()) => {
                        Err(ServeError::Disconnected(message))
                    }
                    Err(message) => Err(ServeError::Rejected(message)),
                };
            }
            if !state.pending.contains_key(&id) {
                return Err(ServeError::Protocol(format!(
                    "request {id} vanished without a reply"
                )));
            }
            state = self.cond.wait(state).expect("remote client lock");
        }
    }

    /// Fails every outstanding request and wakes all waiters.
    fn fail_all(state: &mut ClientState, cond: &Condvar, message: &str) {
        let mut resolved_batches = 0;
        for slot in state.pending.values_mut() {
            if slot.result.is_none() {
                if slot.kind == SlotKind::Batch {
                    resolved_batches += 1;
                }
                slot.result = Some(Err(message.to_owned()));
            }
        }
        state.batches_in_flight = state.batches_in_flight.saturating_sub(resolved_batches);
        cond.notify_all();
    }
}

/// The background reader: matches response frames to pending slots and owns
/// the reconnect path.
fn reader_loop(inner: &Arc<ClientInner>, mut stream: TcpStream) {
    let mut reader = FrameReader::new();
    loop {
        match reader.read_msg::<ServerMsg>(&mut stream, inner.max_frame_bytes) {
            Ok(msg) => {
                let mut state = inner.state.lock().expect("remote client lock");
                match msg {
                    ServerMsg::BatchResult { id, reports, .. } => {
                        deliver(&mut state, id, Ok(Reply::Batch(reports)));
                    }
                    ServerMsg::Stats { id, stats, .. } => {
                        deliver(&mut state, id, Ok(Reply::Stats(stats)));
                    }
                    ServerMsg::Metrics { id, snapshot } => {
                        deliver(&mut state, id, Ok(Reply::Metrics(snapshot)));
                    }
                    ServerMsg::Opened {
                        id,
                        session,
                        metric_specs,
                        ..
                    } => {
                        deliver(
                            &mut state,
                            id,
                            Ok(Reply::Opened {
                                session,
                                metric_specs,
                            }),
                        );
                    }
                    ServerMsg::Closed { id, .. } => {
                        deliver(&mut state, id, Ok(Reply::Closed));
                    }
                    ServerMsg::CacheFill { id, hits } => {
                        deliver(&mut state, id, Ok(Reply::CacheFill(hits)));
                    }
                    ServerMsg::Error {
                        id: Some(id),
                        message,
                        ..
                    } => {
                        deliver(&mut state, id, Err(message));
                    }
                    ServerMsg::Error {
                        id: None, message, ..
                    } => {
                        // Connection-level error: the server is about to
                        // close on us. Treat like a disconnect (reconnect
                        // replays the window) but remember the reason.
                        drop(state);
                        match reconnect(inner, &message) {
                            Some((s, r)) => {
                                stream = s;
                                reader = r;
                            }
                            None => return,
                        }
                        continue;
                    }
                    ServerMsg::Goodbye => {
                        if state.closed {
                            state.stream = None;
                            ClientInner::fail_all(
                                &mut state,
                                &inner.cond,
                                "the remote session closed",
                            );
                            return;
                        }
                        // Server-initiated drain: reconnect (the restart
                        // case) or give up after retries.
                        drop(state);
                        match reconnect(inner, "server said goodbye") {
                            Some((s, r)) => {
                                stream = s;
                                reader = r;
                            }
                            None => return,
                        }
                        continue;
                    }
                    ServerMsg::Welcome(_) => {
                        // Handshakes are read inline by connect/reconnect;
                        // a stray Welcome here is a server bug — ignore.
                    }
                }
                inner.cond.notify_all();
            }
            Err(error) => {
                {
                    let mut state = inner.state.lock().expect("remote client lock");
                    state.stream = None;
                    if state.closed {
                        ClientInner::fail_all(&mut state, &inner.cond, "the remote session closed");
                        return;
                    }
                }
                match reconnect(inner, &error.to_string()) {
                    Some((s, r)) => {
                        stream = s;
                        reader = r;
                    }
                    None => return,
                }
            }
        }
    }
}

fn deliver(state: &mut ClientState, id: u64, result: Result<Reply, String>) {
    if let Some(slot) = state.pending.get_mut(&id) {
        if slot.kind == SlotKind::Internal {
            // A reconnect-replayed Open: nobody waits on it, drop the slot.
            state.pending.remove(&id);
            return;
        }
        // The pipeline window frees on *delivery*, not on `wait` — a
        // submitter blocked on a full window must not deadlock against a
        // caller that collects its replies only after submitting them all.
        if slot.kind == SlotKind::Batch && slot.result.is_none() {
            state.batches_in_flight = state.batches_in_flight.saturating_sub(1);
        }
        slot.result = Some(result);
    }
    // Unknown ids (e.g. a duplicate reply straddling a reconnect) are
    // dropped: every waiter matches on its own id, so spurious frames
    // cannot corrupt another request's result.
}

/// Dials, handshakes and replays the window. Returns the new read half or
/// `None` when retries are exhausted (state is then marked broken) or the
/// backend closed meanwhile.
fn reconnect(inner: &Arc<ClientInner>, reason: &str) -> Option<(TcpStream, FrameReader)> {
    let retries = inner.reconnect.max_retries;
    for attempt in 0..retries {
        // Sleep in small slices so a concurrent drop aborts promptly.
        let mut remaining = inner.reconnect.delay(attempt);
        while !remaining.is_zero() {
            let slice = remaining.min(Duration::from_millis(25));
            std::thread::sleep(slice);
            remaining -= slice;
            if inner.state.lock().expect("remote client lock").closed {
                return None;
            }
        }
        let Ok(mut fresh) = TcpStream::connect(inner.addr) else {
            continue;
        };
        let _ = fresh.set_nodelay(true);
        if handshake(&mut fresh, &inner.hello, inner.max_frame_bytes).is_err() {
            continue;
        }
        let mut state = inner.state.lock().expect("remote client lock");
        if state.closed {
            return None;
        }
        // Re-open every multiplexed channel, then replay the whole pending
        // window in id order — all under the state lock, so submitters
        // cannot interleave half a frame into the replay stream.
        let reopen: Vec<(u32, ChannelSpec)> = state
            .channels
            .iter()
            .map(|(channel, spec)| (*channel, spec.clone()))
            .collect();
        for (channel, spec) in reopen {
            let id = state.next_id;
            state.next_id += 1;
            let msg = ClientMsg::Open {
                id,
                channel,
                benchmark: spec.benchmark,
                node: spec.node,
                session: spec.session,
                weight: spec.weight,
            };
            if let Ok(frame) = encode_frame(&msg) {
                state.pending.insert(
                    id,
                    Slot {
                        frame,
                        kind: SlotKind::Internal,
                        result: None,
                    },
                );
            }
        }
        let mut wrote_ok = true;
        let frames: Vec<Vec<u8>> = state
            .pending
            .values()
            .filter(|slot| slot.result.is_none())
            .map(|slot| slot.frame.clone())
            .collect();
        for frame in frames {
            if fresh.write_all(&frame).is_err() {
                wrote_ok = false;
                break;
            }
        }
        if !wrote_ok {
            continue;
        }
        let Ok(write_half) = fresh.try_clone() else {
            continue;
        };
        state.stream = Some(write_half);
        state.generation += 1;
        inner.cond.notify_all();
        return Some((fresh, FrameReader::new()));
    }
    let message = format!("{reason} (after {retries} reconnect attempts)");
    let mut state = inner.state.lock().expect("remote client lock");
    state.stream = None;
    state.broken = Some(message.clone());
    ClientInner::fail_all(&mut state, &inner.cond, &message);
    None
}

/// Writes `Hello` and reads `Welcome` on a fresh stream (bounded by a read
/// timeout so a wedged server cannot hang the reconnect loop forever).
fn handshake(
    stream: &mut TcpStream,
    hello: &Hello,
    max_frame_bytes: usize,
) -> Result<Welcome, ServeError> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    stream.write_all(&encode_frame(&ClientMsg::Hello(hello.clone()))?)?;
    let mut reader = FrameReader::new();
    let welcome = match reader.read_msg(stream, max_frame_bytes)? {
        ServerMsg::Welcome(welcome) => Ok(welcome),
        ServerMsg::Error { message, .. } => Err(ServeError::Rejected(message)),
        other => Err(ServeError::Protocol(format!(
            "expected Welcome, got {other:?}"
        ))),
    };
    let _ = stream.set_read_timeout(None);
    welcome
}

/// One in-flight batch: hand the window to the server, collect later.
///
/// Dropping a `PendingReply` without waiting abandons the result (the reader
/// discards it on arrival); the reply still counts against the pipeline
/// window until it resolves.
#[must_use = "a submitted batch resolves through PendingReply::wait"]
pub struct PendingReply {
    inner: Arc<ClientInner>,
    /// `None` for an empty batch, which never touches the wire.
    id: Option<u64>,
    expected: usize,
    /// The `serve.rpc.ns` span covering this request's submit→resolve
    /// lifetime; finished when the reply resolves (or the handle is
    /// abandoned).
    span: Option<SpanHandle>,
}

impl PendingReply {
    /// Blocks until the batch resolves, returning reports in input order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the server failed the batch,
    /// [`ServeError::Disconnected`] when the connection died and every
    /// reconnect attempt failed.
    pub fn wait(mut self) -> Result<Vec<PerformanceReport>, ServeError> {
        let Some(id) = self.id else {
            return Ok(Vec::new());
        };
        let outcome = self.inner.wait(id);
        if let Some(span) = self.span.as_mut() {
            span.finish();
        }
        match outcome? {
            Reply::Batch(reports) => {
                if reports.len() == self.expected {
                    Ok(reports)
                } else {
                    Err(ServeError::Protocol(format!(
                        "asked for {} reports, got {}",
                        self.expected,
                        reports.len()
                    )))
                }
            }
            _ => Err(ServeError::Protocol(
                "expected BatchResult for a batch request".to_owned(),
            )),
        }
    }
}

/// One remote evaluation session: an [`EvalBackend`] whose engine lives in
/// an [`EvalServer`](crate::EvalServer) process, reached over a
/// length-prefixed JSON protocol.
///
/// The synchronous [`EvalBackend`] methods behave exactly like the blocking
/// client; [`RemoteBackend::submit_batch`] pipelines up to
/// [`RemoteConfig::pipeline`] batches. [`RemoteBackend::open_channel`]
/// multiplexes further logical sessions (possibly different benchmarks)
/// over the same socket — the returned handle is itself a full
/// `RemoteBackend` sharing the connection.
pub struct RemoteBackend {
    inner: Arc<ClientInner>,
    /// Wire channel this handle speaks on (0 = the `Hello` session).
    channel: u32,
    benchmark: Benchmark,
    node: TechnologyNode,
    metric_specs: Vec<MetricSpec>,
    session: String,
    /// Per-handle request counter seeding deterministic root trace ids when
    /// no ambient trace context exists (the solo-client case).
    trace_seq: AtomicU64,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("benchmark", &self.benchmark)
            .field("node", &self.node.name)
            .field("session", &self.session)
            .field("channel", &self.channel)
            .finish()
    }
}

impl RemoteBackend {
    /// Connects and performs the versioned handshake with default options.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the server is unreachable,
    /// [`ServeError::Rejected`] when the handshake is refused (e.g. a
    /// protocol version mismatch or admission control).
    pub fn connect(
        addr: impl ToSocketAddrs,
        benchmark: Benchmark,
        node: &TechnologyNode,
    ) -> Result<Self, ServeError> {
        Self::connect_with(addr, benchmark, node, RemoteConfig::default())
    }

    /// Connects with explicit session / weight / pipeline / reconnect
    /// options.
    ///
    /// # Errors
    ///
    /// As for [`RemoteBackend::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        benchmark: Benchmark,
        node: &TechnologyNode,
        config: RemoteConfig,
    ) -> Result<Self, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let hello = Hello {
            version: PROTOCOL_VERSION,
            benchmark,
            node: node.clone(),
            session: config.session.clone(),
            weight: Some(config.weight.max(1)),
        };
        let welcome = handshake(&mut stream, &hello, config.max_frame_bytes)?;
        let write_half = stream.try_clone()?;
        let inner = Arc::new(ClientInner {
            addr: stream.peer_addr()?,
            hello,
            max_frame_bytes: config.max_frame_bytes,
            pipeline: config.pipeline.max(1),
            reconnect: config.reconnect,
            state: Mutex::new(ClientState {
                stream: Some(write_half),
                pending: BTreeMap::new(),
                channels: BTreeMap::new(),
                next_id: 1,
                next_channel: 1,
                batches_in_flight: 0,
                generation: 0,
                closed: false,
                broken: None,
            }),
            cond: Condvar::new(),
            reader: Mutex::new(None),
        });
        let for_reader = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("gcnrl-remote-reader".to_owned())
            .spawn(move || reader_loop(&for_reader, stream))
            .map_err(ServeError::Io)?;
        *inner.reader.lock().expect("reader handle lock") = Some(handle);
        Ok(RemoteBackend {
            inner,
            channel: 0,
            benchmark,
            node: node.clone(),
            metric_specs: welcome.metric_specs,
            session: welcome.session,
            trace_seq: AtomicU64::new(0),
        })
    }

    /// The session name the server registered for this handle.
    pub fn session_name(&self) -> &str {
        &self.session
    }

    /// Completed reconnects so far (0 on an unbroken connection).
    pub fn reconnects(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("remote client lock")
            .generation
    }

    /// Opens another logical session over the same socket (protocol v3
    /// channel multiplexing). The returned handle is a full
    /// [`RemoteBackend`] — same pipeline window, same reconnect policy, and
    /// it is re-opened automatically after a reconnect.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the server refuses the open,
    /// transport/protocol errors otherwise.
    pub fn open_channel(
        &self,
        benchmark: Benchmark,
        node: &TechnologyNode,
        session: Option<String>,
        weight: u64,
    ) -> Result<RemoteBackend, ServeError> {
        let spec = ChannelSpec {
            benchmark,
            node: node.clone(),
            session,
            weight: Some(weight.max(1)),
        };
        let channel = {
            let mut state = self.inner.state.lock().expect("remote client lock");
            let channel = state.next_channel;
            state.next_channel += 1;
            channel
        };
        let open = spec.clone();
        let id = self
            .inner
            .send(SlotKind::Control, move |id| ClientMsg::Open {
                id,
                channel,
                benchmark: open.benchmark,
                node: open.node,
                session: open.session,
                weight: open.weight,
            })?;
        match self.inner.wait(id)? {
            Reply::Opened {
                session,
                metric_specs,
            } => {
                self.inner
                    .state
                    .lock()
                    .expect("remote client lock")
                    .channels
                    .insert(channel, spec);
                Ok(RemoteBackend {
                    inner: Arc::clone(&self.inner),
                    channel,
                    benchmark,
                    node: node.clone(),
                    metric_specs,
                    session,
                    trace_seq: AtomicU64::new(0),
                })
            }
            _ => Err(ServeError::Protocol(
                "expected Opened for an Open request".to_owned(),
            )),
        }
    }

    /// Submits a batch without waiting: up to [`RemoteConfig::pipeline`]
    /// submissions ride the wire concurrently (the call blocks once the
    /// window is full). Results come back through [`PendingReply::wait`],
    /// in input order within the batch regardless of response reordering.
    ///
    /// Each submission opens a `serve.rpc.ns` span — a child of the ambient
    /// trace context when one is active (the sharded fan-out case), else the
    /// root of a fresh deterministic trace keyed on this handle's session
    /// name and request counter — and the span's context rides the v5 frame
    /// so server-side spans parent under it.
    ///
    /// # Errors
    ///
    /// Transport errors; a full window blocks rather than erroring.
    pub fn submit_batch(&self, params: &[ParamVector]) -> Result<PendingReply, ServeError> {
        if params.is_empty() {
            return Ok(PendingReply {
                inner: Arc::clone(&self.inner),
                id: None,
                expected: 0,
                span: None,
            });
        }
        let span = match TraceContext::current() {
            Some(parent) => SpanHandle::child_of("serve.rpc.ns", parent),
            None => {
                let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
                SpanHandle::root("serve.rpc.ns", trace_id_for(&self.session, seq))
            }
        };
        let trace = Some(span.context());
        let channel = self.channel;
        let owned = params.to_vec();
        let id = self
            .inner
            .send(SlotKind::Batch, move |id| ClientMsg::EvalBatch {
                id,
                channel,
                params: owned,
                trace,
            })?;
        Ok(PendingReply {
            inner: Arc::clone(&self.inner),
            id: Some(id),
            expected: params.len(),
            span: Some(span),
        })
    }

    /// Evaluates a batch remotely, returning reports in input order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the server failed the batch (e.g. an
    /// evaluator panic — the message carries the original panic text, like
    /// the local session contract), transport/protocol errors otherwise.
    pub fn try_evaluate_batch(
        &self,
        params: &[ParamVector],
    ) -> Result<Vec<PerformanceReport>, ServeError> {
        self.submit_batch(params)?.wait()
    }

    /// Fetches the server-side statistics bundle (shared engine, this
    /// session, last batch).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn remote_stats(&self) -> Result<WireStats, ServeError> {
        let channel = self.channel;
        let id = self
            .inner
            .send(SlotKind::Control, move |id| ClientMsg::Stats {
                id,
                channel,
            })?;
        match self.inner.wait(id)? {
            Reply::Stats(stats) => Ok(stats),
            _ => Err(ServeError::Protocol(
                "expected Stats for a Stats request".to_owned(),
            )),
        }
    }

    /// Asks the server whether its result caches hold `keys` (protocol v4
    /// peering). One slot comes back per key, in query order —
    /// `Some(report)` for a cache hit, `None` for a miss. Probes are
    /// non-polluting on the server side (no counter or LRU effect).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn cache_query(
        &self,
        keys: Vec<gcnrl_exec::CacheKey>,
    ) -> Result<Vec<Option<PerformanceReport>>, ServeError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let trace = TraceContext::current();
        let id = self
            .inner
            .send(SlotKind::Control, move |id| ClientMsg::CacheQuery {
                id,
                keys,
                trace,
            })?;
        match self.inner.wait(id)? {
            Reply::CacheFill(hits) => Ok(hits),
            _ => Err(ServeError::Protocol(
                "expected CacheFill for a CacheQuery request".to_owned(),
            )),
        }
    }

    /// Fetches the server process's full telemetry snapshot — every counter,
    /// gauge and latency histogram (solver, engine, service and serve-layer
    /// timings).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn metrics(&self) -> Result<gcnrl_telemetry::RegistrySnapshot, ServeError> {
        let id = self
            .inner
            .send(SlotKind::Control, move |id| ClientMsg::Metrics { id })?;
        match self.inner.wait(id)? {
            Reply::Metrics(snapshot) => Ok(snapshot),
            _ => Err(ServeError::Protocol(
                "expected Metrics for a Metrics request".to_owned(),
            )),
        }
    }

    /// Closes this handle cleanly: channel 0 says `Goodbye` (ending the
    /// whole connection after every in-flight request resolves), a
    /// multiplexed channel sends `Close` and leaves the connection up.
    ///
    /// # Errors
    ///
    /// Transport errors; the handle is consumed either way.
    pub fn goodbye(self) -> Result<(), ServeError> {
        if self.channel != 0 {
            let channel = self.channel;
            let id = self
                .inner
                .send(SlotKind::Control, move |id| ClientMsg::Close {
                    id,
                    channel,
                })?;
            let outcome = match self.inner.wait(id)? {
                Reply::Closed => Ok(()),
                _ => Err(ServeError::Protocol(
                    "expected Closed for a Close request".to_owned(),
                )),
            };
            self.inner
                .state
                .lock()
                .expect("remote client lock")
                .channels
                .remove(&channel);
            return outcome;
        }
        // Channel 0: drain the window, then Goodbye and join the reader.
        let mut state = self.inner.state.lock().expect("remote client lock");
        while !state.pending.is_empty() && state.broken.is_none() {
            state = self.inner.cond.wait(state).expect("remote client lock");
        }
        state.closed = true;
        let outcome = match &mut state.stream {
            Some(stream) => match encode_frame(&ClientMsg::Goodbye) {
                Ok(frame) => stream.write_all(&frame).map_err(ServeError::Io),
                Err(error) => Err(ServeError::Io(error)),
            },
            None => Ok(()),
        };
        drop(state);
        self.inner.cond.notify_all();
        if let Some(handle) = self.inner.reader.lock().expect("reader handle lock").take() {
            let _ = handle.join();
        }
        outcome
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        if self.channel != 0 {
            // Best-effort Close for a multiplexed channel; the connection
            // itself stays owned by the channel-0 handle.
            let mut state = self.inner.state.lock().expect("remote client lock");
            if state.closed || state.broken.is_some() {
                return;
            }
            state.channels.remove(&self.channel);
            let channel = self.channel;
            let id = state.next_id;
            state.next_id += 1;
            if let (Some(stream), Ok(frame)) = (
                &mut state.stream,
                encode_frame(&ClientMsg::Close { id, channel }),
            ) {
                let _ = stream.write_all(&frame);
            }
            return;
        }
        // Channel 0: best-effort Goodbye, then stop and join the reader so
        // no thread outlives the backend.
        {
            let mut state = self.inner.state.lock().expect("remote client lock");
            if !state.closed {
                state.closed = true;
                if let Some(stream) = &mut state.stream {
                    if let Ok(frame) = encode_frame(&ClientMsg::Goodbye) {
                        let _ = stream.write_all(&frame);
                    }
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
            self.inner.cond.notify_all();
        }
        if let Some(handle) = self.inner.reader.lock().expect("reader handle lock").take() {
            let _ = handle.join();
        }
    }
}

impl EvalBackend for RemoteBackend {
    fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &self.metric_specs
    }

    /// # Panics
    ///
    /// Panics when the server failed the batch or became unreachable,
    /// mirroring [`SessionHandle::evaluate_batch`]'s contract
    /// (`SessionHandle` panics on a failed round too). Use
    /// [`RemoteBackend::try_evaluate_batch`] to handle failures.
    fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        match self.try_evaluate_batch(params) {
            Ok(reports) => reports,
            Err(ServeError::Rejected(message)) => {
                panic!("remote evaluation failed: {message}")
            }
            Err(error) => panic!("remote evaluation transport failed: {error}"),
        }
    }

    fn stats(&self) -> ExecStats {
        self.remote_stats()
            .map(|s| s.engine)
            .unwrap_or_else(|error| panic!("remote stats unavailable: {error}"))
    }

    fn last_batch(&self) -> BatchReport {
        self.remote_stats()
            .map(|s| s.last_batch)
            .unwrap_or_else(|error| panic!("remote stats unavailable: {error}"))
    }
}
