//! The remote evaluation backend: an [`EvalBackend`] implementation that
//! forwards batches to an [`EvalServer`](crate::EvalServer) over TCP.
//!
//! Because evaluators are pure and the wire format round-trips every float
//! bit-exactly, a `SizingEnv` (or `FomConfig` calibration sweep) over a
//! `RemoteBackend` produces results bit-identical to the same run over a
//! local engine — the server is purely a sharing/locality decision.

use crate::protocol::{
    write_frame, ClientMsg, FrameError, FrameReader, Hello, ServerMsg, Welcome, WireStats,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{BatchReport, EvalBackend, ExecStats};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;

/// Why a remote operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// A frame could not be decoded.
    Frame(FrameError),
    /// The server answered the handshake (or a request) with an error.
    Rejected(String),
    /// The server sent a reply the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Frame(e) => write!(f, "protocol framing error: {e}"),
            ServeError::Rejected(msg) => write!(f, "server rejected the request: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

/// Client-side connection options.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteConfig {
    /// Session name announced to the server (defaults to the peer-assigned
    /// name — the client's address — when `None`).
    pub session: Option<String>,
    /// Fair-share weight requested for the session (see
    /// [`SessionHandle::with_weight`](gcnrl_exec::SessionHandle::with_weight)).
    pub weight: u64,
    /// Frame payload cap applied to received frames.
    pub max_frame_bytes: usize,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            session: None,
            weight: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

struct Connection {
    stream: TcpStream,
    reader: FrameReader,
    /// Set once a Goodbye went out, so drop does not send a second one.
    closed: bool,
}

/// One remote evaluation session: an [`EvalBackend`] whose engine lives in
/// an [`EvalServer`](crate::EvalServer) process, reached over a
/// length-prefixed JSON protocol.
///
/// The handle serialises its requests internally (one in flight at a time),
/// mirroring how a [`SessionHandle`](gcnrl_exec::SessionHandle) is used by a
/// single optimisation loop. Open one `RemoteBackend` per concurrent client.
pub struct RemoteBackend {
    benchmark: Benchmark,
    node: TechnologyNode,
    metric_specs: Vec<MetricSpec>,
    session: String,
    max_frame_bytes: usize,
    conn: Mutex<Connection>,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("benchmark", &self.benchmark)
            .field("node", &self.node.name)
            .field("session", &self.session)
            .finish()
    }
}

impl RemoteBackend {
    /// Connects and performs the versioned handshake with default options.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the server is unreachable,
    /// [`ServeError::Rejected`] when the handshake is refused (e.g. a
    /// protocol version mismatch).
    pub fn connect(
        addr: impl ToSocketAddrs,
        benchmark: Benchmark,
        node: &TechnologyNode,
    ) -> Result<Self, ServeError> {
        Self::connect_with(addr, benchmark, node, RemoteConfig::default())
    }

    /// Connects with explicit session name / weight / frame-cap options.
    ///
    /// # Errors
    ///
    /// As for [`RemoteBackend::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        benchmark: Benchmark,
        node: &TechnologyNode,
        config: RemoteConfig,
    ) -> Result<Self, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        write_frame(
            &mut stream,
            &ClientMsg::Hello(Hello {
                version: PROTOCOL_VERSION,
                benchmark,
                node: node.clone(),
                session: config.session,
                weight: Some(config.weight.max(1)),
            }),
        )?;
        let mut reader = FrameReader::new();
        let welcome: Welcome = match reader.read_msg(&mut stream, config.max_frame_bytes)? {
            ServerMsg::Welcome(welcome) => welcome,
            ServerMsg::Error { message } => return Err(ServeError::Rejected(message)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected Welcome, got {other:?}"
                )))
            }
        };
        Ok(RemoteBackend {
            benchmark,
            node: node.clone(),
            metric_specs: welcome.metric_specs,
            session: welcome.session,
            max_frame_bytes: config.max_frame_bytes,
            conn: Mutex::new(Connection {
                stream,
                reader,
                closed: false,
            }),
        })
    }

    /// The session name the server registered for this connection.
    pub fn session_name(&self) -> &str {
        &self.session
    }

    /// One request/reply round trip.
    fn rpc(&self, msg: &ClientMsg) -> Result<ServerMsg, ServeError> {
        let mut conn = self.conn.lock().expect("remote connection lock");
        write_frame(&mut conn.stream, msg)?;
        let Connection { stream, reader, .. } = &mut *conn;
        Ok(reader.read_msg(stream, self.max_frame_bytes)?)
    }

    /// Evaluates a batch remotely, returning reports in input order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the server failed the batch (e.g. an
    /// evaluator panic — the message carries the original panic text, like
    /// the local session contract), transport/protocol errors otherwise.
    pub fn try_evaluate_batch(
        &self,
        params: &[ParamVector],
    ) -> Result<Vec<PerformanceReport>, ServeError> {
        if params.is_empty() {
            return Ok(Vec::new());
        }
        match self.rpc(&ClientMsg::EvalBatch {
            params: params.to_vec(),
        })? {
            ServerMsg::BatchResult { reports } => {
                if reports.len() == params.len() {
                    Ok(reports)
                } else {
                    Err(ServeError::Protocol(format!(
                        "asked for {} reports, got {}",
                        params.len(),
                        reports.len()
                    )))
                }
            }
            ServerMsg::Error { message } => Err(ServeError::Rejected(message)),
            other => Err(ServeError::Protocol(format!(
                "expected BatchResult, got {other:?}"
            ))),
        }
    }

    /// Fetches the server-side statistics bundle (shared engine, this
    /// session, last batch).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn remote_stats(&self) -> Result<WireStats, ServeError> {
        match self.rpc(&ClientMsg::Stats)? {
            ServerMsg::Stats(stats) => Ok(stats),
            ServerMsg::Error { message } => Err(ServeError::Rejected(message)),
            other => Err(ServeError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Fetches the server process's full telemetry snapshot — every counter,
    /// gauge and latency histogram (solver, engine, service and serve-layer
    /// timings).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn metrics(&self) -> Result<gcnrl_telemetry::RegistrySnapshot, ServeError> {
        match self.rpc(&ClientMsg::Metrics)? {
            ServerMsg::Metrics(snapshot) => Ok(snapshot),
            ServerMsg::Error { message } => Err(ServeError::Rejected(message)),
            other => Err(ServeError::Protocol(format!(
                "expected Metrics, got {other:?}"
            ))),
        }
    }

    /// Closes the session cleanly (also attempted on drop, best-effort).
    ///
    /// # Errors
    ///
    /// Transport errors; the connection is consumed either way.
    pub fn goodbye(self) -> Result<(), ServeError> {
        let mut conn = self.conn.lock().expect("remote connection lock");
        conn.closed = true;
        write_frame(&mut conn.stream, &ClientMsg::Goodbye)?;
        let Connection { stream, reader, .. } = &mut *conn;
        match reader.read_msg::<ServerMsg>(stream, self.max_frame_bytes) {
            Ok(ServerMsg::Goodbye) | Err(FrameError::Closed) => Ok(()),
            Ok(other) => Err(ServeError::Protocol(format!(
                "expected Goodbye, got {other:?}"
            ))),
            Err(e) => Err(ServeError::Frame(e)),
        }
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        // Best-effort clean close so the server logs a Goodbye instead of a
        // disconnect; failures are fine (the server tolerates both).
        if let Ok(mut conn) = self.conn.lock() {
            if !conn.closed {
                conn.closed = true;
                let _ = write_frame(&mut conn.stream, &ClientMsg::Goodbye);
            }
        }
    }
}

impl EvalBackend for RemoteBackend {
    fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &self.metric_specs
    }

    /// # Panics
    ///
    /// Panics when the server failed the batch or became unreachable,
    /// mirroring [`SessionHandle::evaluate_batch`]'s contract
    /// (`SessionHandle` panics on a failed round too). Use
    /// [`RemoteBackend::try_evaluate_batch`] to handle failures.
    fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        match self.try_evaluate_batch(params) {
            Ok(reports) => reports,
            Err(ServeError::Rejected(message)) => {
                panic!("remote evaluation failed: {message}")
            }
            Err(error) => panic!("remote evaluation transport failed: {error}"),
        }
    }

    fn stats(&self) -> ExecStats {
        self.remote_stats()
            .map(|s| s.engine)
            .unwrap_or_else(|error| panic!("remote stats unavailable: {error}"))
    }

    fn last_batch(&self) -> BatchReport {
        self.remote_stats()
            .map(|s| s.last_batch)
            .unwrap_or_else(|error| panic!("remote stats unavailable: {error}"))
    }
}
